// Package peer implements the decentralised protocol of §4.1 steps 4–6
// from a single participant's point of view. Unlike internal/core — the
// omniscient engine used by the offline experiments — a Peer holds only
// its own state:
//
//   - its evaluation store (votes + retention signals),
//   - its download ledger (what it fetched, from whom),
//   - its user ratings (friends, blacklist),
//
// and computes everything else over the network:
//
//   - step 4: fetch another peer's signed evaluation list and compute the
//     file-based direct trust FT locally (Eq. 2);
//   - step 5: retrieve a file's EvaluationInfo records from the DHT and
//     compute R_f (Eq. 9) against its own direct-trust row;
//   - step 6: order upload requests and assign bandwidth quotas with the
//     incentive policy (§3.4);
//   - §4.2: proactively re-examine peers' evaluation lists and drop
//     flagged forgers from the trust row.
//
// Exchanged evaluation lists are signed per entry, so a relay cannot
// forge them; verification failures discard the entry.
package peer

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"mdrep/internal/core"
	"mdrep/internal/eval"
	"mdrep/internal/fault"
	"mdrep/internal/identity"
	"mdrep/internal/incentive"
	"mdrep/internal/obs"
	"mdrep/internal/security"
)

// Causal-tracing span names and attribute keys (const table per the
// metriclabel analyzer's span-attribute contract).
const (
	spanSync  = "peer.sync"
	spanFetch = "peer.fetch_evaluations"
	spanServe = "peer.serve_evaluations"

	attrTarget   = "target"
	attrVerified = "verified"
)

// Directory resolves peer IDs to public keys (a PKI or self-certifying
// namespace).
type Directory = identity.Directory

// Network is how a peer reaches other peers' evaluation lists. The
// in-memory Exchange implements it; a TCP implementation can reuse the
// DHT transport's framing.
type Network interface {
	// FetchEvaluations returns the target's current signed evaluation
	// list, continuing the caller's trace across the exchange.
	FetchEvaluations(sc obs.SpanContext, target identity.PeerID) ([]eval.Info, error)
}

// Config parameterises a peer.
type Config struct {
	// Reputation carries the trust weights, blend, window and fake
	// threshold (Steps is ignored: a lone peer computes its one-step
	// row; deeper multi-trust requires exchanging rows, which §3.2 shows
	// is unnecessary once the one-step matrix is dense).
	Reputation core.Config
	// Policy is the service-differentiation policy for the upload queue.
	Policy incentive.Policy
	// ExaminerThreshold and ExaminerMinOverlap configure proactive
	// examination (§4.2); a zero threshold disables it.
	ExaminerThreshold  float64
	ExaminerMinOverlap int
}

// DefaultConfig returns the paper defaults plus a 0.3-drift examiner.
func DefaultConfig() Config {
	return Config{
		Reputation:         core.DefaultConfig(),
		Policy:             incentive.DefaultPolicy(),
		ExaminerThreshold:  0.3,
		ExaminerMinOverlap: 3,
	}
}

// Peer is one protocol participant.
type Peer struct {
	cfg Config
	id  *identity.Identity
	dir *Directory
	net Network

	// mu is a reader/writer lock: evidence mutations and cache updates
	// take the write lock, while the serving paths (TrustRow, JudgeFile,
	// SignedEvaluations, state export) share the read lock, so concurrent
	// requests do not serialise behind each other.
	mu     sync.RWMutex
	store  *eval.Store
	now    time.Duration
	downBy map[identity.PeerID][]downloadEntry
	rating map[identity.PeerID]float64
	banned map[identity.PeerID]struct{}
	// lists caches fetched evaluation lists per peer.
	lists    map[identity.PeerID]map[eval.FileID]float64
	examiner *security.Examiner
	examIdx  map[identity.PeerID]int
	examSeq  int
	queue    *incentive.Queue
}

type downloadEntry struct {
	file eval.FileID
	size int64
}

// New builds a peer with the given identity, PKI directory and network.
func New(id *identity.Identity, dir *Directory, net Network, cfg Config) (*Peer, error) {
	if id == nil || dir == nil || net == nil {
		return nil, fault.Terminal(errors.New("peer: nil identity, directory or network"))
	}
	if err := cfg.Reputation.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Policy.Validate(); err != nil {
		return nil, err
	}
	store, err := eval.NewStore(cfg.Reputation.Blend, cfg.Reputation.Window)
	if err != nil {
		return nil, err
	}
	queue, err := incentive.NewQueue(cfg.Policy)
	if err != nil {
		return nil, err
	}
	p := &Peer{
		cfg:     cfg,
		id:      id,
		dir:     dir,
		net:     net,
		store:   store,
		downBy:  make(map[identity.PeerID][]downloadEntry),
		rating:  make(map[identity.PeerID]float64),
		banned:  make(map[identity.PeerID]struct{}),
		lists:   make(map[identity.PeerID]map[eval.FileID]float64),
		examIdx: make(map[identity.PeerID]int),
		queue:   queue,
	}
	if cfg.ExaminerThreshold > 0 {
		minOverlap := cfg.ExaminerMinOverlap
		if minOverlap < 1 {
			minOverlap = 1
		}
		ex, err := security.NewExaminer(cfg.ExaminerThreshold, minOverlap)
		if err != nil {
			return nil, err
		}
		p.examiner = ex
	}
	return p, nil
}

// ID returns the peer's identifier.
func (p *Peer) ID() identity.PeerID { return p.id.ID() }

// AdvanceTo moves the peer's virtual clock forward.
func (p *Peer) AdvanceTo(now time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if now > p.now {
		p.now = now
	}
}

// Vote records the peer's own explicit evaluation of f.
func (p *Peer) Vote(f eval.FileID, value float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.store.Vote(f, value, p.now)
}

// ObserveRetention records the peer's own implicit evaluation of f.
func (p *Peer) ObserveRetention(f eval.FileID, retention time.Duration, deleted bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.store.SetImplicit(f, p.cfg.Reputation.Retention.Implicit(retention, deleted), p.now)
}

// RecordDownload registers a completed download from uploader.
func (p *Peer) RecordDownload(uploader identity.PeerID, f eval.FileID, size int64) error {
	if uploader == p.ID() {
		return fault.Terminal(errors.New("peer: self-download"))
	}
	if size < 0 {
		return fault.Terminal(fmt.Errorf("peer: negative size %d", size))
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.downBy[uploader] = append(p.downBy[uploader], downloadEntry{file: f, size: size})
	return nil
}

// RateUser records an explicit user rating; Blacklist bans permanently.
func (p *Peer) RateUser(target identity.PeerID, value float64) error {
	if value < 0 || value > 1 {
		return fault.Terminal(fmt.Errorf("peer: rating %v outside [0,1]", value))
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, bad := p.banned[target]; bad {
		return nil
	}
	p.rating[target] = value
	return nil
}

// Blacklist permanently zeroes the target's user trust.
func (p *Peer) Blacklist(target identity.PeerID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.banned[target] = struct{}{}
	delete(p.rating, target)
	delete(p.lists, target)
}

// SignedEvaluations returns the peer's current evaluation list as signed
// EvaluationInfo records — what it serves to other peers (and publishes
// to the DHT with its file index entries).
func (p *Peer) SignedEvaluations() ([]eval.Info, error) {
	p.mu.RLock()
	snap := p.store.Snapshot(p.now)
	now := p.now
	p.mu.RUnlock()
	out := make([]eval.Info, 0, len(snap))
	for f, v := range snap {
		info := eval.Info{FileID: f, OwnerID: p.ID(), Evaluation: v, Timestamp: now}
		if err := info.Sign(p.id); err != nil {
			return nil, err
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FileID < out[j].FileID })
	return out, nil
}

// SyncPeer fetches the target's evaluation list (§4.1 step 4), verifies
// each entry's signature, caches it, and feeds the examiner. It returns
// the number of verified entries.
func (p *Peer) SyncPeer(target identity.PeerID) (n int, err error) {
	if target == p.ID() {
		return 0, fault.Terminal(errors.New("peer: cannot sync with self"))
	}
	// One sync is one trace: fetch, verification, examination.
	sp := obs.StartRoot(spanSync)
	sp.AttrStr(attrTarget, string(target))
	defer func() {
		sp.Attr(attrVerified, int64(n))
		sp.EndErr(err)
	}()
	infos, err := p.net.FetchEvaluations(sp.Context(), target)
	if err != nil {
		return 0, fmt.Errorf("peer: fetch %s: %w", target, err)
	}
	list := make(map[eval.FileID]float64, len(infos))
	for _, in := range infos {
		if in.OwnerID != target {
			continue // relayed garbage
		}
		if err := in.Verify(p.dir); err != nil {
			continue // forged entry
		}
		list[in.FileID] = in.Evaluation
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.examiner != nil {
		idx, ok := p.examIdx[target]
		if !ok {
			idx = p.examSeq
			p.examSeq++
			p.examIdx[target] = idx
		}
		if v := p.examiner.Examine(idx, list); v.Flagged {
			p.banned[target] = struct{}{}
			delete(p.rating, target)
			delete(p.lists, target)
			return 0, fault.Terminal(fmt.Errorf("peer: %s flagged as evaluation forger", target))
		}
	}
	p.lists[target] = list
	return len(list), nil
}

// fileTrustLocked computes FT against a cached list (Eq. 2).
func (p *Peer) fileTrustLocked(list map[eval.FileID]float64) float64 {
	mine := p.store.Snapshot(p.now)
	if len(mine) == 0 || len(list) == 0 {
		return 0
	}
	sum, m := 0.0, 0
	for f, theirs := range list {
		ours, ok := mine[f]
		if !ok {
			continue
		}
		sum += math.Abs(ours - theirs)
		m++
	}
	if m == 0 {
		return 0
	}
	ft := 1 - sum/float64(m)
	if ft < 0 {
		return 0
	}
	return ft
}

// TrustRow returns the peer's one-step direct trust in every known peer:
// the per-peer equivalent of row i of TM (Eq. 7), built from its own
// evidence and the synced evaluation lists, normalised per dimension.
// Blacklisted and flagged peers are excluded.
func (p *Peer) TrustRow() map[identity.PeerID]float64 {
	p.mu.RLock()
	defer p.mu.RUnlock()

	ft := make(map[identity.PeerID]float64, len(p.lists))
	var ftTotal float64
	for target, list := range p.lists {
		if _, bad := p.banned[target]; bad {
			continue
		}
		if v := p.fileTrustLocked(list); v > 0 {
			ft[target] = v
			ftTotal += v
		}
	}
	vd := make(map[identity.PeerID]float64, len(p.downBy))
	var vdTotal float64
	floor := p.cfg.Reputation.Retention.Floor
	for target, entries := range p.downBy {
		if _, bad := p.banned[target]; bad {
			continue
		}
		total := 0.0
		for _, d := range entries {
			ev, ok := p.store.Get(d.file, p.now)
			if !ok {
				ev = floor
			}
			total += ev * float64(d.size)
		}
		if total > 0 {
			vd[target] = total
			vdTotal += total
		}
	}
	ut := make(map[identity.PeerID]float64, len(p.rating))
	var utTotal float64
	for target, v := range p.rating {
		if v > 0 {
			ut[target] = v
			utTotal += v
		}
	}

	row := make(map[identity.PeerID]float64)
	add := func(m map[identity.PeerID]float64, total, weight float64) {
		if total <= 0 || weight <= 0 {
			return
		}
		for target, v := range m {
			row[target] += weight * v / total
		}
	}
	add(ft, ftTotal, p.cfg.Reputation.Alpha)
	add(vd, vdTotal, p.cfg.Reputation.Beta)
	add(ut, utTotal, p.cfg.Reputation.Gamma)
	return row
}

// JudgeFile computes R_f (Eq. 9) from DHT-retrieved evaluator records,
// verifying each record's signature first (§4.2 attack 1).
func (p *Peer) JudgeFile(records []eval.Info) (core.Judgement, error) {
	row := p.TrustRow()
	var num, den float64
	for _, in := range records {
		if in.Evaluation < 0 || in.Evaluation > 1 {
			continue
		}
		if err := in.Verify(p.dir); err != nil {
			continue
		}
		r := row[in.OwnerID]
		if r <= 0 {
			continue
		}
		num += r * in.Evaluation
		den += r
	}
	if den <= 0 {
		return core.Judgement{}, nil
	}
	rf := num / den
	return core.Judgement{
		Reputation: rf,
		Known:      true,
		Fake:       rf < p.cfg.Reputation.FakeThreshold,
	}, nil
}

// JudgeFileFromCache computes R_f from the peer's locally cached
// evaluation lists instead of DHT records — the degraded mode used when
// the file index is unreachable (§4.1 step 5 fallback). The cached
// entries were signature-verified when synced. Coverage is limited to
// peers whose lists this peer has fetched, so the verdict can be
// Unknown for a file the wider network has evaluated.
func (p *Peer) JudgeFileFromCache(f eval.FileID) core.Judgement {
	row := p.TrustRow() // before p.mu: TrustRow takes the same lock
	p.mu.RLock()
	targets := make([]identity.PeerID, 0, len(p.lists))
	for target := range p.lists {
		targets = append(targets, target)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
	var num, den float64
	for _, target := range targets {
		e, ok := p.lists[target][f]
		if !ok || e < 0 || e > 1 {
			continue
		}
		r := row[target]
		if r <= 0 {
			continue
		}
		num += r * e
		den += r
	}
	p.mu.RUnlock()
	if den <= 0 {
		return core.Judgement{}
	}
	rf := num / den
	return core.Judgement{
		Reputation: rf,
		Known:      true,
		Fake:       rf < p.cfg.Reputation.FakeThreshold,
	}
}

// EnqueueUpload queues an inbound upload request under the incentive
// policy, using the peer's current trust in the requester (§4.1 step 6).
func (p *Peer) EnqueueUpload(requester identity.PeerID, file string, size int64, arrival time.Duration) error {
	row := p.TrustRow()
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.queue.Push(incentive.Request{
		Requester:  0, // integer slot unused in the decentralised path
		File:       file,
		Size:       size,
		Arrival:    arrival,
		Reputation: row[requester],
	})
}

// NextUpload dequeues the highest-priority upload request.
func (p *Peer) NextUpload() (incentive.Request, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.queue.Pop()
}

// PendingUploads returns the queue depth.
func (p *Peer) PendingUploads() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.queue.Len()
}

// IsBlacklisted reports whether the peer has banned target (explicitly or
// via the examiner).
func (p *Peer) IsBlacklisted(target identity.PeerID) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	_, bad := p.banned[target]
	return bad
}
