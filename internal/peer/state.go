package peer

import (
	"fmt"
	"sort"
	"time"

	"mdrep/internal/eval"
	"mdrep/internal/fault"
	"mdrep/internal/identity"
)

// A Peer's own evidence — its evaluation store, download ledger, user
// ratings and blacklist — is expressed as a serializable event model so
// internal/journal can make it durable. Synced evaluation lists and
// examiner state are deliberately *not* part of it: they are caches of
// other peers' claims, re-fetched over the network, and re-trusting them
// across a restart would let a since-flagged forger ride back in.

// EventKind discriminates peer events. Values are part of the on-disk
// journal format — append new kinds, never renumber.
type EventKind uint8

const (
	// EventAdvance moves the peer's virtual clock to Time.
	EventAdvance EventKind = 1
	// EventVote records an explicit evaluation: File, Value, Time.
	EventVote EventKind = 2
	// EventSetImplicit records a retention-derived evaluation: File,
	// Value, Time.
	EventSetImplicit EventKind = 3
	// EventDownload records a completed transfer: Target (uploader),
	// File, Size.
	EventDownload EventKind = 4
	// EventRateUser records a user rating: Target, Value.
	EventRateUser EventKind = 5
	// EventBlacklist permanently bans Target.
	EventBlacklist EventKind = 6
)

// Event is one serializable peer mutation.
type Event struct {
	Kind   EventKind       `json:"kind"`
	Target identity.PeerID `json:"target,omitempty"`
	File   eval.FileID     `json:"file,omitempty"`
	Value  float64         `json:"value,omitempty"`
	Size   int64           `json:"size,omitempty"`
	Time   time.Duration   `json:"time,omitempty"`
}

// Now returns the peer's current virtual time.
func (p *Peer) Now() time.Duration {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.now
}

// ApplyEvent applies one event. It is deterministic, so journal replay
// reproduces the peer's evidence exactly.
func (p *Peer) ApplyEvent(ev Event) error {
	switch ev.Kind {
	case EventAdvance:
		p.AdvanceTo(ev.Time)
		return nil
	case EventVote:
		p.mu.Lock()
		defer p.mu.Unlock()
		p.store.Vote(ev.File, ev.Value, ev.Time)
		return nil
	case EventSetImplicit:
		p.mu.Lock()
		defer p.mu.Unlock()
		p.store.SetImplicit(ev.File, ev.Value, ev.Time)
		return nil
	case EventDownload:
		if ev.Target == p.ID() {
			return fault.Terminal(fmt.Errorf("peer: self-download"))
		}
		if ev.Size < 0 {
			return fault.Terminal(fmt.Errorf("peer: negative size %d", ev.Size))
		}
		p.mu.Lock()
		defer p.mu.Unlock()
		p.downBy[ev.Target] = append(p.downBy[ev.Target], downloadEntry{file: ev.File, size: ev.Size})
		return nil
	case EventRateUser:
		return p.RateUser(ev.Target, ev.Value)
	case EventBlacklist:
		p.Blacklist(ev.Target)
		return nil
	default:
		return fault.Terminal(fmt.Errorf("peer: unknown event kind %d", ev.Kind))
	}
}

// State is the serializable own-evidence state of a Peer.
type State struct {
	Now     time.Duration                    `json:"now"`
	Records map[eval.FileID]eval.Record      `json:"records"`
	DownBy  map[identity.PeerID][]DownRecord `json:"down_by"`
	Ratings map[identity.PeerID]float64      `json:"ratings"`
	Banned  []identity.PeerID                `json:"banned"`
}

// DownRecord is one serialized download ledger entry.
type DownRecord struct {
	File eval.FileID `json:"file"`
	Size int64       `json:"size"`
}

// ExportState returns a deep copy of the peer's own evidence.
func (p *Peer) ExportState() *State {
	p.mu.RLock()
	defer p.mu.RUnlock()
	st := &State{
		Now:     p.now,
		Records: p.store.Export(),
		DownBy:  make(map[identity.PeerID][]DownRecord, len(p.downBy)),
		Ratings: make(map[identity.PeerID]float64, len(p.rating)),
		Banned:  make([]identity.PeerID, 0, len(p.banned)),
	}
	for target, entries := range p.downBy {
		out := make([]DownRecord, len(entries))
		for i, d := range entries {
			out[i] = DownRecord{File: d.file, Size: d.size}
		}
		st.DownBy[target] = out
	}
	for target, v := range p.rating {
		st.Ratings[target] = v
	}
	for target := range p.banned {
		st.Banned = append(st.Banned, target)
	}
	sort.Slice(st.Banned, func(i, j int) bool { return st.Banned[i] < st.Banned[j] })
	return st
}

// RestoreState replaces the peer's own evidence with st. Caches (synced
// lists, examiner history) are left empty — they refill from the network.
func (p *Peer) RestoreState(st *State) error {
	if st == nil {
		return fault.Terminal(fmt.Errorf("peer: nil state"))
	}
	downBy := make(map[identity.PeerID][]downloadEntry, len(st.DownBy))
	for target, entries := range st.DownBy {
		out := make([]downloadEntry, len(entries))
		for i, d := range entries {
			out[i] = downloadEntry{file: d.File, size: d.Size}
		}
		downBy[target] = out
	}
	rating := make(map[identity.PeerID]float64, len(st.Ratings))
	for target, v := range st.Ratings {
		if v < 0 || v > 1 {
			return fault.Terminal(fmt.Errorf("peer: restored rating %v outside [0,1]", v))
		}
		rating[target] = v
	}
	banned := make(map[identity.PeerID]struct{}, len(st.Banned))
	for _, target := range st.Banned {
		banned[target] = struct{}{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.now = st.Now
	p.store.Import(st.Records)
	p.downBy = downBy
	p.rating = rating
	p.banned = banned
	return nil
}
