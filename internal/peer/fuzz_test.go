package peer

import (
	"bytes"
	"encoding/binary"
	"testing"

	"mdrep/internal/wire"
)

// FuzzExchangeFrameDecode drives the evaluation-exchange codec with
// arbitrary bytes: both the request the server decodes and the response
// the client decodes must error on malformed input, never panic.
func FuzzExchangeFrameDecode(f *testing.F) {
	var buf bytes.Buffer
	_ = wire.WriteFrame(&buf, exchangeRequest{Method: "evaluations"})
	f.Add(buf.Bytes())
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], wire.MaxFrame+1)
	f.Add(hdr[:])                                       // oversize declaration
	f.Add([]byte{0, 0})                                 // truncated header
	f.Add(append([]byte{0, 0, 0, 50}, `{"method":`...)) // truncated body
	f.Add(append([]byte{0, 0, 0, 2}, `[]`...))          // wrong JSON shape

	f.Fuzz(func(t *testing.T, data []byte) {
		var req exchangeRequest
		_ = wire.ReadFrame(bytes.NewReader(data), &req)
		var resp exchangeResponse
		_ = wire.ReadFrame(bytes.NewReader(data), &resp)
		// Reaching here without a panic is the property; decode errors
		// are the expected outcome for malformed frames.
	})
}
