package peer

import (
	"math"
	"strings"
	"testing"
	"time"

	"mdrep/internal/eval"
	"mdrep/internal/identity"
)

// testnet builds n peers on a shared exchange and PKI directory.
func testnet(t *testing.T, n int, cfg Config) ([]*Peer, *Exchange, *Directory) {
	t.Helper()
	dir := identity.NewDirectory()
	ex := NewExchange()
	peers := make([]*Peer, 0, n)
	for i := 0; i < n; i++ {
		id, err := identity.Generate(identity.NewDeterministicReader(uint64(1000 + i)))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dir.Register(id.PublicKey()); err != nil {
			t.Fatal(err)
		}
		p, err := New(id, dir, ex, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ex.Register(p)
		peers = append(peers, p)
	}
	return peers, ex, dir
}

func TestNewValidation(t *testing.T) {
	id, err := identity.Generate(identity.NewDeterministicReader(1))
	if err != nil {
		t.Fatal(err)
	}
	dir := identity.NewDirectory()
	ex := NewExchange()
	if _, err := New(nil, dir, ex, DefaultConfig()); err == nil {
		t.Fatal("nil identity accepted")
	}
	if _, err := New(id, nil, ex, DefaultConfig()); err == nil {
		t.Fatal("nil directory accepted")
	}
	if _, err := New(id, dir, nil, DefaultConfig()); err == nil {
		t.Fatal("nil network accepted")
	}
	bad := DefaultConfig()
	bad.Reputation.Steps = 0
	if _, err := New(id, dir, ex, bad); err == nil {
		t.Fatal("invalid reputation config accepted")
	}
}

func TestSignedEvaluationsVerify(t *testing.T) {
	peers, _, dir := testnet(t, 1, DefaultConfig())
	p := peers[0]
	p.AdvanceTo(time.Hour)
	p.Vote("a", 0.8)
	p.ObserveRetention("b", 10*24*time.Hour, false)
	infos, err := p.SignedEvaluations()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("signed %d evaluations", len(infos))
	}
	for _, in := range infos {
		if err := in.Verify(dir); err != nil {
			t.Fatalf("own evaluation fails verification: %v", err)
		}
	}
}

func TestSyncPeerBuildsFileTrust(t *testing.T) {
	peers, _, _ := testnet(t, 2, DefaultConfig())
	a, b := peers[0], peers[1]
	// Same opinions on two files.
	for _, p := range peers {
		p.Vote("x", 0.9)
		p.Vote("y", 0.2)
	}
	n, err := a.SyncPeer(b.ID())
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("synced %d entries", n)
	}
	row := a.TrustRow()
	if row[b.ID()] <= 0 {
		t.Fatalf("no trust after agreeing history: %v", row)
	}
}

func TestSyncPeerSelfRejected(t *testing.T) {
	peers, _, _ := testnet(t, 1, DefaultConfig())
	if _, err := peers[0].SyncPeer(peers[0].ID()); err == nil {
		t.Fatal("self-sync accepted")
	}
}

func TestSyncPeerDropsForgedEntries(t *testing.T) {
	peers, ex, _ := testnet(t, 2, DefaultConfig())
	a, b := peers[0], peers[1]
	b.Vote("x", 0.9)
	// A man-in-the-middle serves b's list with one tampered and one
	// honestly signed entry.
	ex.RegisterFunc(b.ID(), func() ([]eval.Info, error) {
		infos, err := b.SignedEvaluations()
		if err != nil {
			return nil, err
		}
		forged := infos[0]
		forged.FileID = "evil"
		return append(infos, forged), nil
	})
	n, err := a.SyncPeer(b.ID())
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("accepted %d entries, want only the honestly signed one", n)
	}
}

func TestTrustRowDimensions(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Reputation.Blend = eval.Blend{Eta: 0, Rho: 1}
	peers, _, _ := testnet(t, 4, cfg)
	a, b, c, d := peers[0], peers[1], peers[2], peers[3]

	// FM evidence: a and b agree.
	a.Vote("x", 0.9)
	b.Vote("x", 0.9)
	if _, err := a.SyncPeer(b.ID()); err != nil {
		t.Fatal(err)
	}
	// DM evidence: a downloaded a good file from c.
	if err := a.RecordDownload(c.ID(), "dl", 1000); err != nil {
		t.Fatal(err)
	}
	a.Vote("dl", 1.0)
	// UM evidence: a rates d.
	if err := a.RateUser(d.ID(), 0.7); err != nil {
		t.Fatal(err)
	}

	row := a.TrustRow()
	for _, target := range []*Peer{b, c, d} {
		if row[target.ID()] <= 0 {
			t.Fatalf("dimension missing for %s: %v", target.ID(), row)
		}
	}
	// All three dimensions have one entry each, so the row must sum to
	// α+β+γ = 1.
	sum := 0.0
	for _, v := range row {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("trust row sums to %v", sum)
	}
}

func TestBlacklistRemovesTrust(t *testing.T) {
	peers, _, _ := testnet(t, 2, DefaultConfig())
	a, b := peers[0], peers[1]
	a.Vote("x", 0.9)
	b.Vote("x", 0.9)
	if _, err := a.SyncPeer(b.ID()); err != nil {
		t.Fatal(err)
	}
	if err := a.RateUser(b.ID(), 1.0); err != nil {
		t.Fatal(err)
	}
	a.Blacklist(b.ID())
	row := a.TrustRow()
	if row[b.ID()] != 0 {
		t.Fatalf("blacklisted peer retains trust %v", row[b.ID()])
	}
	if err := a.RateUser(b.ID(), 1.0); err != nil {
		t.Fatal(err)
	}
	if a.TrustRow()[b.ID()] != 0 {
		t.Fatal("post-blacklist rating restored trust")
	}
	if !a.IsBlacklisted(b.ID()) {
		t.Fatal("blacklist not reported")
	}
}

func TestJudgeFileEndToEnd(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Reputation.Blend = eval.Blend{Eta: 0, Rho: 1}
	peers, _, _ := testnet(t, 3, cfg)
	a, friend, liar := peers[0], peers[1], peers[2]
	// a trusts friend (agreeing history), not liar.
	a.Vote("h1", 0.9)
	friend.Vote("h1", 0.95)
	liar.Vote("h1", 0.05)
	for _, other := range []*Peer{friend, liar} {
		if _, err := a.SyncPeer(other.ID()); err != nil {
			t.Fatal(err)
		}
	}
	// The file's DHT records: friend says fake, liar promotes.
	friend.Vote("newfile", 0.05)
	liar.Vote("newfile", 1.0)
	var records []eval.Info
	for _, other := range []*Peer{friend, liar} {
		infos, err := other.SignedEvaluations()
		if err != nil {
			t.Fatal(err)
		}
		for _, in := range infos {
			if in.FileID == "newfile" {
				records = append(records, in)
			}
		}
	}
	j, err := a.JudgeFile(records)
	if err != nil {
		t.Fatal(err)
	}
	if !j.Known || !j.Fake {
		t.Fatalf("fake not identified: %+v", j)
	}
}

func TestJudgeFileIgnoresForgedRecords(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Reputation.Blend = eval.Blend{Eta: 0, Rho: 1} // votes carry full weight
	peers, _, _ := testnet(t, 2, cfg)
	a, b := peers[0], peers[1]
	a.Vote("h", 0.9)
	b.Vote("h", 0.9)
	if _, err := a.SyncPeer(b.ID()); err != nil {
		t.Fatal(err)
	}
	b.Vote("f", 0.9)
	infos, err := b.SignedEvaluations()
	if err != nil {
		t.Fatal(err)
	}
	var rec eval.Info
	for _, in := range infos {
		if in.FileID == "f" {
			rec = in
		}
	}
	forged := rec
	forged.Evaluation = 0.0 // tampered: signature now invalid
	j, err := a.JudgeFile([]eval.Info{forged, rec})
	if err != nil {
		t.Fatal(err)
	}
	if !j.Known || j.Fake {
		t.Fatalf("forged record influenced judgement: %+v", j)
	}
	if math.Abs(j.Reputation-0.9) > 1e-9 {
		t.Fatalf("R_f = %v, want 0.9 from the genuine record alone", j.Reputation)
	}
}

func TestJudgeFileUnknownWithoutTrust(t *testing.T) {
	peers, _, _ := testnet(t, 2, DefaultConfig())
	a, b := peers[0], peers[1]
	b.Vote("f", 0.9)
	infos, err := b.SignedEvaluations()
	if err != nil {
		t.Fatal(err)
	}
	j, err := a.JudgeFile(infos)
	if err != nil {
		t.Fatal(err)
	}
	if j.Known {
		t.Fatalf("judgement from untrusted evaluator: %+v", j)
	}
}

func TestExaminerFlagsMimicAndBans(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ExaminerMinOverlap = 2
	peers, ex, _ := testnet(t, 2, cfg)
	a := peers[0]
	mimicID, err := identity.Generate(identity.NewDeterministicReader(7777))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.dir.Register(mimicID.PublicKey()); err != nil {
		t.Fatal(err)
	}
	// The mimic signs whatever list it currently wants to present —
	// valid signatures, inconsistent content.
	phase := 0
	ex.RegisterFunc(mimicID.ID(), func() ([]eval.Info, error) {
		vals := []float64{0.95, 0.05}
		out := make([]eval.Info, 0, 2)
		for _, f := range []eval.FileID{"m1", "m2"} {
			in := eval.Info{FileID: f, OwnerID: mimicID.ID(), Evaluation: vals[phase], Timestamp: time.Duration(phase)}
			if err := in.Sign(mimicID); err != nil {
				return nil, err
			}
			out = append(out, in)
		}
		return out, nil
	})
	if _, err := a.SyncPeer(mimicID.ID()); err != nil {
		t.Fatal(err)
	}
	phase = 1 // wholesale rewrite between examinations
	_, err = a.SyncPeer(mimicID.ID())
	if err == nil || !strings.Contains(err.Error(), "forger") {
		t.Fatalf("mimic not flagged: %v", err)
	}
	if !a.IsBlacklisted(mimicID.ID()) {
		t.Fatal("flagged mimic not banned")
	}
}

func TestUploadQueuePrefersTrusted(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy.MaxOffset = time.Hour
	cfg.Policy.RefReputation = 0.5
	peers, _, _ := testnet(t, 3, cfg)
	a, trusted, stranger := peers[0], peers[1], peers[2]
	a.Vote("x", 0.9)
	trusted.Vote("x", 0.9)
	if _, err := a.SyncPeer(trusted.ID()); err != nil {
		t.Fatal(err)
	}
	if err := a.EnqueueUpload(stranger.ID(), "f", 1<<20, 0); err != nil {
		t.Fatal(err)
	}
	if err := a.EnqueueUpload(trusted.ID(), "f", 1<<20, 30*time.Minute); err != nil {
		t.Fatal(err)
	}
	if a.PendingUploads() != 2 {
		t.Fatalf("queue depth %d", a.PendingUploads())
	}
	first, ok := a.NextUpload()
	if !ok {
		t.Fatal("empty queue")
	}
	if first.Arrival != 30*time.Minute {
		t.Fatalf("trusted requester did not overtake: first arrival %v", first.Arrival)
	}
}

func TestRecordDownloadValidation(t *testing.T) {
	peers, _, _ := testnet(t, 1, DefaultConfig())
	p := peers[0]
	if err := p.RecordDownload(p.ID(), "f", 1); err == nil {
		t.Fatal("self-download accepted")
	}
	if err := p.RecordDownload("other", "f", -1); err == nil {
		t.Fatal("negative size accepted")
	}
	if err := p.RateUser("other", 1.5); err == nil {
		t.Fatal("out-of-range rating accepted")
	}
}

func TestUnreachablePeer(t *testing.T) {
	peers, ex, _ := testnet(t, 2, DefaultConfig())
	a, b := peers[0], peers[1]
	ex.Unregister(b.ID())
	if _, err := a.SyncPeer(b.ID()); err == nil {
		t.Fatal("sync with unreachable peer succeeded")
	}
}

func TestWindowExpiryInTrustRow(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Reputation.Window = time.Hour
	peers, _, _ := testnet(t, 2, cfg)
	a, b := peers[0], peers[1]
	a.Vote("x", 0.9)
	b.Vote("x", 0.9)
	if _, err := a.SyncPeer(b.ID()); err != nil {
		t.Fatal(err)
	}
	if a.TrustRow()[b.ID()] <= 0 {
		t.Fatal("no trust before expiry")
	}
	a.AdvanceTo(3 * time.Hour)
	// a's own evaluation expired, so the intersection is empty.
	if v := a.TrustRow()[b.ID()]; v != 0 {
		t.Fatalf("trust %v from expired evaluations", v)
	}
}

func TestJudgeFileFromCache(t *testing.T) {
	peers, _, _ := testnet(t, 3, DefaultConfig())
	a, b, c := peers[0], peers[1], peers[2]
	// Shared history so a trusts b and c, plus divergent opinions on the
	// file under judgement.
	for _, p := range peers {
		p.Vote("x", 0.9)
		p.Vote("y", 0.2)
	}
	b.Vote("f", 0.8)
	c.Vote("f", 0.6)
	if _, err := a.SyncPeer(b.ID()); err != nil {
		t.Fatal(err)
	}
	if _, err := a.SyncPeer(c.ID()); err != nil {
		t.Fatal(err)
	}
	row := a.TrustRow()
	rb, rc := row[b.ID()], row[c.ID()]
	if rb <= 0 || rc <= 0 {
		t.Fatalf("no trust after agreeing history: %v", row)
	}
	j := a.JudgeFileFromCache("f")
	if !j.Known {
		t.Fatal("cached verdict unknown despite two synced opinions")
	}
	// The store blends votes with the retention dimension, so read the
	// expected evaluations from the signed lists themselves.
	evalOf := func(p *Peer, f eval.FileID) float64 {
		t.Helper()
		infos, err := p.SignedEvaluations()
		if err != nil {
			t.Fatal(err)
		}
		for _, in := range infos {
			if in.FileID == f {
				return in.Evaluation
			}
		}
		t.Fatalf("%s has no evaluation for %s", p.ID(), f)
		return 0
	}
	want := (rb*evalOf(b, "f") + rc*evalOf(c, "f")) / (rb + rc)
	if math.Abs(j.Reputation-want) > 1e-12 {
		t.Fatalf("R_f = %v, want trust-weighted mean %v", j.Reputation, want)
	}
	if wantFake := want < DefaultConfig().Reputation.FakeThreshold; j.Fake != wantFake {
		t.Fatalf("Fake = %v for R_f %.3f, want %v", j.Fake, j.Reputation, wantFake)
	}
	// A file nobody in the cache evaluated stays unknown.
	if j := a.JudgeFileFromCache("nobody-voted"); j.Known {
		t.Fatalf("unknown file got verdict %+v", j)
	}
	// A uniformly low-rated file is flagged fake.
	b.Vote("junk", 0.1)
	c.Vote("junk", 0.05)
	if _, err := a.SyncPeer(b.ID()); err != nil {
		t.Fatal(err)
	}
	if _, err := a.SyncPeer(c.ID()); err != nil {
		t.Fatal(err)
	}
	if j := a.JudgeFileFromCache("junk"); !j.Known || !j.Fake {
		t.Fatalf("low-rated file not flagged fake: %+v", j)
	}
}
