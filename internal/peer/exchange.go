package peer

import (
	"fmt"
	"sync"

	"mdrep/internal/eval"
	"mdrep/internal/fault"
	"mdrep/internal/identity"
	"mdrep/internal/obs"
)

// Exchange is the in-memory Network: a registry through which peers serve
// each other their signed evaluation lists. It also lets tests interpose
// adversarial responders (mimics, garbage relays).
type Exchange struct {
	mu      sync.RWMutex
	serving map[identity.PeerID]func() ([]eval.Info, error)
}

// NewExchange returns an empty exchange.
func NewExchange() *Exchange {
	return &Exchange{serving: make(map[identity.PeerID]func() ([]eval.Info, error))}
}

// Register attaches a peer so others can fetch its evaluation list.
func (e *Exchange) Register(p *Peer) {
	e.RegisterFunc(p.ID(), p.SignedEvaluations)
}

// RegisterFunc attaches an arbitrary responder under an ID; tests use it
// to model forgers and unreachable peers.
func (e *Exchange) RegisterFunc(id identity.PeerID, fn func() ([]eval.Info, error)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.serving[id] = fn
}

// Unregister detaches a peer (it left the network).
func (e *Exchange) Unregister(id identity.PeerID) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.serving, id)
}

// FetchEvaluations implements Network. The in-process exchange still
// opens a fetch span so traces look the same against both networks.
func (e *Exchange) FetchEvaluations(sc obs.SpanContext, target identity.PeerID) (infos []eval.Info, err error) {
	sp := obs.StartSpan(sc, spanFetch)
	sp.AttrStr(attrTarget, string(target))
	defer func() { sp.EndErr(err) }()
	e.mu.RLock()
	fn, ok := e.serving[target]
	e.mu.RUnlock()
	if !ok {
		return nil, fault.Unreachable(fmt.Errorf("peer: %s unreachable", target))
	}
	return fn()
}

var _ Network = (*Exchange)(nil)
