package peer

import (
	"net"

	"mdrep/internal/metrics"
)

// ExchangeObs counts evaluation-exchange traffic: bytes on the wire in
// each direction plus fetch/serve call counts. One observer can be
// shared by the TCP client and server of a process so the exported
// series cover all exchange traffic.
type ExchangeObs struct {
	bytesIn  *metrics.Counter // peer_exchange_bytes_total{dir="in"}
	bytesOut *metrics.Counter // peer_exchange_bytes_total{dir="out"}
	fetches  *metrics.Counter // peer_exchange_fetches_total
	serves   *metrics.Counter // peer_exchange_serves_total
}

// NewExchangeObs registers the exchange metric families in reg. A nil
// registry returns a nil (disabled) observer.
func NewExchangeObs(reg *metrics.Registry) *ExchangeObs {
	if reg == nil {
		return nil
	}
	return &ExchangeObs{
		bytesIn:  reg.Counter("peer_exchange_bytes_total", "dir", "in"),
		bytesOut: reg.Counter("peer_exchange_bytes_total", "dir", "out"),
		fetches:  reg.Counter("peer_exchange_fetches_total"),
		serves:   reg.Counter("peer_exchange_serves_total"),
	}
}

// wrap decorates conn so reads and writes tally into the observer; a nil
// observer returns conn unchanged.
func (o *ExchangeObs) wrap(conn net.Conn) net.Conn {
	if o == nil {
		return conn
	}
	return countingConn{Conn: conn, obs: o}
}

func (o *ExchangeObs) countFetch() {
	if o != nil {
		o.fetches.Inc()
	}
}

func (o *ExchangeObs) countServe() {
	if o != nil {
		o.serves.Inc()
	}
}

// countingConn tallies wire traffic around an inner net.Conn.
type countingConn struct {
	net.Conn
	obs *ExchangeObs
}

func (c countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.obs.bytesIn.Add(uint64(n))
	return n, err
}

func (c countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.obs.bytesOut.Add(uint64(n))
	return n, err
}
