package peer

import (
	"strings"
	"testing"
	"time"

	"mdrep/internal/eval"
	"mdrep/internal/identity"
	"mdrep/internal/obs"
	"mdrep/internal/wire"

	"net"
)

// tcpTestnet builds two peers connected over real TCP exchange servers.
func tcpTestnet(t *testing.T) (alice, bob *Peer, resolver *StaticResolver) {
	t.Helper()
	dir := identity.NewDirectory()
	resolver = NewStaticResolver()
	network := NewTCPExchange(resolver)

	mk := func(seed uint64) *Peer {
		t.Helper()
		id, err := identity.Generate(identity.NewDeterministicReader(seed))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dir.Register(id.PublicKey()); err != nil {
			t.Fatal(err)
		}
		p, err := New(id, dir, network, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		srv, err := ServeExchange("127.0.0.1:0", p.SignedEvaluations)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = srv.Close() })
		resolver.Set(p.ID(), srv.Addr())
		return p
	}
	return mk(31), mk(32), resolver
}

func TestTCPExchangeSyncAndJudge(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP exchange test")
	}
	alice, bob, _ := tcpTestnet(t)
	alice.Vote("shared", 0.9)
	bob.Vote("shared", 0.88)
	n, err := alice.SyncPeer(bob.ID())
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("synced %d entries over TCP", n)
	}
	if alice.TrustRow()[bob.ID()] <= 0 {
		t.Fatal("no trust after TCP sync")
	}
}

func TestTCPExchangeUnknownPeer(t *testing.T) {
	alice, _, _ := tcpTestnet(t)
	ghost, err := identity.Generate(identity.NewDeterministicReader(99))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := alice.SyncPeer(ghost.ID()); err == nil {
		t.Fatal("sync with unresolvable peer succeeded")
	}
}

func TestTCPExchangeUnknownMethod(t *testing.T) {
	srv, err := ServeExchange("127.0.0.1:0", func() ([]eval.Info, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	conn, err := net.DialTimeout("tcp", srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	if err := conn.SetDeadline(time.Now().Add(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteFrame(conn, exchangeRequest{Method: "bogus"}); err != nil {
		t.Fatal(err)
	}
	var resp exchangeResponse
	if err := wire.ReadFrame(conn, &resp); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Error, "unknown method") {
		t.Fatalf("response: %+v", resp)
	}
}

func TestStaticResolver(t *testing.T) {
	r := NewStaticResolver()
	if _, err := r.Resolve("nobody"); err == nil {
		t.Fatal("unknown ID resolved")
	}
	r.Set("someone", "127.0.0.1:1234")
	addr, err := r.Resolve("someone")
	if err != nil || addr != "127.0.0.1:1234" {
		t.Fatalf("Resolve = %q, %v", addr, err)
	}
}

func TestTCPExchangeDialFailure(t *testing.T) {
	r := NewStaticResolver()
	r.Set("dead", "127.0.0.1:1")
	e := NewTCPExchange(r)
	e.DialTimeout = 200 * time.Millisecond
	if _, err := e.FetchEvaluations(obs.SpanContext{}, "dead"); err == nil {
		t.Fatal("fetch from closed port succeeded")
	}
}
