package peer

import (
	"fmt"
	"net"
	"sync"
	"time"

	"mdrep/internal/eval"
	"mdrep/internal/fault"
	"mdrep/internal/identity"
	"mdrep/internal/obs"
	"mdrep/internal/wire"
)

// The TCP exchange lets participants fetch each other's signed evaluation
// lists over the network (§4.1 step 4). The protocol is a single
// request/response per connection using internal/wire framing:
//
//	→ {"method":"evaluations"}
//	← {"evaluations":[EvaluationInfo…]} | {"error":"…"}
//
// Addresses are resolved through a Resolver (peer ID → host:port); in a
// deployment this mapping rides on the DHT like any other record.

type exchangeRequest struct {
	Method string `json:"method"`
	Trace  []byte `json:"trace,omitempty"`
}

type exchangeResponse struct {
	Error       string      `json:"error,omitempty"`
	Evaluations []eval.Info `json:"evaluations,omitempty"`
}

// Resolver maps peer IDs to transport addresses.
type Resolver interface {
	// Resolve returns the host:port serving the peer's evaluation list.
	Resolve(id identity.PeerID) (string, error)
}

// StaticResolver is a fixed ID → address table.
type StaticResolver struct {
	mu    sync.RWMutex
	addrs map[identity.PeerID]string
}

// NewStaticResolver returns an empty resolver.
func NewStaticResolver() *StaticResolver {
	return &StaticResolver{addrs: make(map[identity.PeerID]string)}
}

// Set binds an ID to an address.
func (r *StaticResolver) Set(id identity.PeerID, addr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.addrs[id] = addr
}

// Resolve implements Resolver.
func (r *StaticResolver) Resolve(id identity.PeerID) (string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	addr, ok := r.addrs[id]
	if !ok {
		return "", fault.Unreachable(fmt.Errorf("peer: no address for %s", id))
	}
	return addr, nil
}

var _ Resolver = (*StaticResolver)(nil)

// TCPExchange implements Network over TCP.
type TCPExchange struct {
	resolver Resolver
	// DialTimeout and CallTimeout bound each fetch.
	DialTimeout, CallTimeout time.Duration

	obs *ExchangeObs
}

// Instrument counts fetches and wire bytes into o. Call before the
// exchange is shared across goroutines.
func (e *TCPExchange) Instrument(o *ExchangeObs) { e.obs = o }

// NewTCPExchange returns a client with 2s dial and 5s call timeouts.
func NewTCPExchange(resolver Resolver) *TCPExchange {
	return &TCPExchange{resolver: resolver, DialTimeout: 2 * time.Second, CallTimeout: 5 * time.Second}
}

// FetchEvaluations implements Network.
func (e *TCPExchange) FetchEvaluations(sc obs.SpanContext, target identity.PeerID) (infos []eval.Info, err error) {
	sp := obs.StartSpan(sc, spanFetch)
	sp.AttrStr(attrTarget, string(target))
	defer func() { sp.EndErr(err) }()
	addr, err := e.resolver.Resolve(target)
	if err != nil {
		return nil, err
	}
	raw, err := net.DialTimeout("tcp", addr, e.DialTimeout)
	if err != nil {
		// Transport failures are tagged retryable (fault.ErrUnreachable);
		// an explicit error frame from the peer below stays terminal.
		return nil, fault.Unreachable(fmt.Errorf("peer: dial %s (%s): %w", target, addr, err))
	}
	defer func() { _ = raw.Close() }()
	e.obs.countFetch()
	conn := e.obs.wrap(raw)
	if err := conn.SetDeadline(time.Now().Add(e.CallTimeout)); err != nil { //mdrep:allow wallclock: I/O deadline on a live socket, not replayed state
		return nil, err
	}
	if err := wire.WriteFrame(conn, exchangeRequest{Method: "evaluations", Trace: sp.Context().MarshalWire()}); err != nil {
		return nil, fault.Unreachable(fmt.Errorf("peer: send to %s: %w", target, err))
	}
	var resp exchangeResponse
	if err := wire.ReadFrame(conn, &resp); err != nil {
		return nil, fault.Unreachable(fmt.Errorf("peer: recv from %s: %w", target, err))
	}
	if resp.Error != "" {
		return nil, fault.Terminal(fmt.Errorf("peer: %s: %s", target, resp.Error))
	}
	return resp.Evaluations, nil
}

var _ Network = (*TCPExchange)(nil)

// ExchangeServer serves one peer's evaluation list over TCP.
type ExchangeServer struct {
	listener net.Listener
	source   func() ([]eval.Info, error)

	mu      sync.Mutex
	obs     *ExchangeObs
	conns   map[net.Conn]struct{}
	closing bool
	wg      sync.WaitGroup
}

// Instrument counts served requests and wire bytes into o. Connections
// already in flight keep their uninstrumented view.
func (s *ExchangeServer) Instrument(o *ExchangeObs) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.obs = o
}

// ServeExchange listens on addr (":0" for ephemeral) and serves the
// evaluation list produced by source — typically (*Peer).SignedEvaluations.
func ServeExchange(addr string, source func() ([]eval.Info, error)) (*ExchangeServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fault.Terminal(fmt.Errorf("peer: listen %s: %w", addr, err))
	}
	s := &ExchangeServer{listener: ln, source: source, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *ExchangeServer) Addr() string { return s.listener.Addr().String() }

// Close stops the listener and waits for in-flight requests.
func (s *ExchangeServer) Close() error {
	s.mu.Lock()
	s.closing = true
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.mu.Unlock()
	err := s.listener.Close()
	s.wg.Wait()
	return err
}

func (s *ExchangeServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closing {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *ExchangeServer) serveConn(raw net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, raw)
		s.mu.Unlock()
		_ = raw.Close()
	}()
	_ = raw.SetDeadline(time.Now().Add(10 * time.Second)) //mdrep:allow wallclock: I/O deadline on a live socket, not replayed state
	s.mu.Lock()
	o := s.obs
	s.mu.Unlock()
	o.countServe()
	conn := o.wrap(raw)
	var req exchangeRequest
	if err := wire.ReadFrame(conn, &req); err != nil {
		return
	}
	sp := obs.StartSpan(obs.SpanContextFromWire(req.Trace), spanServe)
	if req.Method != "evaluations" {
		sp.EndErr(fmt.Errorf("unknown method %q", req.Method)) //mdrep:allow faultwrap: feeds the serve span's status only, never returned to a retry loop
		_ = wire.WriteFrame(conn, exchangeResponse{Error: fmt.Sprintf("unknown method %q", req.Method)})
		return
	}
	infos, err := s.source()
	if err != nil {
		sp.EndErr(err)
		_ = wire.WriteFrame(conn, exchangeResponse{Error: err.Error()})
		return
	}
	sp.End()
	_ = wire.WriteFrame(conn, exchangeResponse{Evaluations: infos})
}
