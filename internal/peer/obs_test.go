package peer

import (
	"testing"

	"mdrep/internal/eval"
	"mdrep/internal/identity"
	"mdrep/internal/metrics"
	"mdrep/internal/obs"
)

func TestExchangeByteCounters(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP exchange test")
	}
	dir := identity.NewDirectory()
	resolver := NewStaticResolver()
	network := NewTCPExchange(resolver)
	reg := metrics.NewRegistry()
	xobs := NewExchangeObs(reg)
	network.Instrument(xobs)

	id, err := identity.Generate(identity.NewDeterministicReader(41))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dir.Register(id.PublicKey()); err != nil {
		t.Fatal(err)
	}
	p, err := New(id, dir, network, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p.Vote("counted-file", 0.75)
	srv, err := ServeExchange("127.0.0.1:0", p.SignedEvaluations)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	srv.Instrument(xobs)
	resolver.Set(p.ID(), srv.Addr())

	infos, err := network.FetchEvaluations(obs.SpanContext{}, p.ID())
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 {
		t.Fatalf("fetched %d evaluations, want 1", len(infos))
	}

	in := reg.Counter("peer_exchange_bytes_total", "dir", "in").Load()
	out := reg.Counter("peer_exchange_bytes_total", "dir", "out").Load()
	if in == 0 || out == 0 {
		t.Fatalf("byte counters not moving: in=%d out=%d", in, out)
	}
	// Client and server share the observer, so both directions see the
	// request and the response; the totals must match exactly.
	if in != out {
		t.Fatalf("in=%d != out=%d with a shared observer", in, out)
	}
	if got := reg.Counter("peer_exchange_fetches_total").Load(); got != 1 {
		t.Errorf("fetches = %d, want 1", got)
	}
	if got := reg.Counter("peer_exchange_serves_total").Load(); got != 1 {
		t.Errorf("serves = %d, want 1", got)
	}
}

func TestExchangeUninstrumented(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP exchange test")
	}
	// A nil observer must be inert end to end.
	var o *ExchangeObs
	o.countFetch()
	o.countServe()
	resolver := NewStaticResolver()
	network := NewTCPExchange(resolver)
	srv, err := ServeExchange("127.0.0.1:0", func() ([]eval.Info, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	resolver.Set("ghost", srv.Addr())
	if _, err := network.FetchEvaluations(obs.SpanContext{}, "ghost"); err != nil {
		t.Fatal(err)
	}
}
