package core

import (
	"testing"
	"time"

	"mdrep/internal/trace"
)

func coverageTrace(t *testing.T) *trace.Trace {
	t.Helper()
	cfg := trace.DefaultGenConfig()
	cfg.Peers = 200
	cfg.Files = 1000
	cfg.Downloads = 20000
	tr, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func measure(t *testing.T, tr *trace.Trace, cfg CoverageConfig) *CoverageResult {
	t.Helper()
	res, err := MeasureCoverage(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func baseCoverageConfig() CoverageConfig {
	return CoverageConfig{VoteFraction: 1, Buckets: 30, Seed: 7}
}

func TestCoverageConfigValidate(t *testing.T) {
	mutations := []func(*CoverageConfig){
		func(c *CoverageConfig) { c.VoteFraction = -0.1 },
		func(c *CoverageConfig) { c.VoteFraction = 1.1 },
		func(c *CoverageConfig) { c.Window = -time.Second },
		func(c *CoverageConfig) { c.Buckets = 0 },
		func(c *CoverageConfig) { c.WithUserEdges = true; c.UserEdgeThreshold = 0 },
	}
	for i, mutate := range mutations {
		cfg := baseCoverageConfig()
		mutate(&cfg)
		if _, err := MeasureCoverage(coverageTrace(t), cfg); err == nil {
			t.Fatalf("mutation %d accepted", i)
		}
	}
}

func TestCoverageMonotoneInVoteFraction(t *testing.T) {
	tr := coverageTrace(t)
	prev := -1.0
	for _, k := range []float64{0.05, 0.2, 0.5, 1.0} {
		cfg := baseCoverageConfig()
		cfg.VoteFraction = k
		res := measure(t, tr, cfg)
		frac := res.OverallFraction()
		if frac < prev {
			t.Fatalf("coverage not monotone in vote fraction: k=%v → %v < %v", k, frac, prev)
		}
		prev = frac
	}
}

func TestCoverageZeroVotesZeroCoverage(t *testing.T) {
	cfg := baseCoverageConfig()
	cfg.VoteFraction = 0
	res := measure(t, coverageTrace(t), cfg)
	if res.Total.Covered != 0 {
		t.Fatalf("zero vote fraction covered %d requests", res.Total.Covered)
	}
}

func TestCoverageFigure1Bands(t *testing.T) {
	// The paper's Figure 1: k=5% → small coverage, k=20% → ≈50%,
	// implicit (100%) → above 80% at steady state.
	tr := coverageTrace(t)

	cfg := baseCoverageConfig()
	cfg.VoteFraction = 1
	implicit := measure(t, tr, cfg).SteadyStateFraction()
	if implicit < 0.8 {
		t.Fatalf("implicit coverage %v, paper reports > 0.8", implicit)
	}

	cfg.VoteFraction = 0.2
	twenty := measure(t, tr, cfg).SteadyStateFraction()
	if twenty < 0.3 || twenty > 0.7 {
		t.Fatalf("k=20%% coverage %v, paper reports ≈ 0.5", twenty)
	}

	cfg.VoteFraction = 0.05
	five := measure(t, tr, cfg).SteadyStateFraction()
	if five > 0.35 {
		t.Fatalf("k=5%% coverage %v, paper reports small", five)
	}
	if five >= twenty || twenty >= implicit {
		t.Fatalf("ordering violated: %v, %v, %v", five, twenty, implicit)
	}
}

func TestCoverageSeriesAccounting(t *testing.T) {
	tr := coverageTrace(t)
	res := measure(t, tr, baseCoverageConfig())
	totalReq, totalCov := 0, 0
	for _, p := range res.Series {
		if p.Covered > p.Requests {
			t.Fatalf("bucket covered %d of %d", p.Covered, p.Requests)
		}
		totalReq += p.Requests
		totalCov += p.Covered
	}
	if totalReq != len(tr.Records) {
		t.Fatalf("series accounts %d of %d requests", totalReq, len(tr.Records))
	}
	if totalReq != res.Total.Requests || totalCov != res.Total.Covered {
		t.Fatal("series totals disagree with Total")
	}
}

func TestCoverageWindowReducesCoverage(t *testing.T) {
	tr := coverageTrace(t)
	unbounded := measure(t, tr, baseCoverageConfig()).OverallFraction()
	cfg := baseCoverageConfig()
	cfg.Window = 24 * time.Hour
	windowed := measure(t, tr, cfg).OverallFraction()
	if windowed > unbounded {
		t.Fatalf("windowed coverage %v exceeds unbounded %v", windowed, unbounded)
	}
	if windowed >= unbounded-0.01 {
		t.Fatalf("1-day window barely changed coverage (%v vs %v); expiry inert?", windowed, unbounded)
	}
}

func TestCoverageExtraDimensionsHelp(t *testing.T) {
	tr := coverageTrace(t)
	cfg := baseCoverageConfig()
	cfg.VoteFraction = 0.05 // sparse regime where DM/UM edges matter
	fileOnly := measure(t, tr, cfg).OverallFraction()
	cfg.WithDownloadEdges = true
	withDM := measure(t, tr, cfg).OverallFraction()
	if withDM < fileOnly {
		t.Fatalf("download edges reduced coverage: %v < %v", withDM, fileOnly)
	}
	cfg.WithUserEdges = true
	cfg.UserEdgeThreshold = 3
	withUM := measure(t, tr, cfg).OverallFraction()
	if withUM < withDM {
		t.Fatalf("user edges reduced coverage: %v < %v", withUM, withDM)
	}
	if withDM <= fileOnly {
		t.Fatalf("download edges added nothing over file edges (%v vs %v)", withDM, fileOnly)
	}
}

func TestCoverageDeterministicAcrossRuns(t *testing.T) {
	tr := coverageTrace(t)
	cfg := baseCoverageConfig()
	cfg.VoteFraction = 0.2
	a := measure(t, tr, cfg)
	b := measure(t, tr, cfg)
	if a.Total != b.Total {
		t.Fatalf("coverage not deterministic: %+v vs %+v", a.Total, b.Total)
	}
}

func TestVoteDecisionStable(t *testing.T) {
	for p := 0; p < 10; p++ {
		for f := 0; f < 10; f++ {
			if voteDecision(1, p, f, 0.5) != voteDecision(1, p, f, 0.5) {
				t.Fatal("voteDecision not deterministic")
			}
		}
	}
	if !voteDecision(1, 3, 4, 1) {
		t.Fatal("fraction 1 must always vote")
	}
	if voteDecision(1, 3, 4, 0) {
		t.Fatal("fraction 0 must never vote")
	}
	yes := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if voteDecision(42, i, i*7+1, 0.3) {
			yes++
		}
	}
	if frac := float64(yes) / n; frac < 0.27 || frac > 0.33 {
		t.Fatalf("voteDecision(0.3) fired at rate %v", frac)
	}
}
