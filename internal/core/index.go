package core

import (
	"sort"
	"sync"

	"mdrep/internal/eval"
)

// evalIndex is the inverted file → evaluators index, striped by file hash
// so concurrent shard writers (core.Sharded's per-shard apply paths) do
// not serialise behind one map mutex. The unsharded Engine uses the same
// index single-threaded; the stripe mutexes are then uncontended and cost
// one atomic each, which keeps the two code paths literally identical —
// the foundation of the shard-count invariance guarantee.
//
// Lock ordering: stripe mutexes are acquired below shard data locks and
// above shard dirty locks (see sharded.go); a stripe callback may mark
// dirty rows but must never acquire a shard data lock.
type evalIndex struct {
	stripes [indexStripes]indexStripe
}

// indexStripes is the stripe count; a power of two so the hash folds with
// a mask. 64 stripes keep the collision probability of 8 concurrent
// shard writers low without bloating the empty index.
const indexStripes = 64

type indexStripe struct {
	mu    sync.Mutex
	files map[eval.FileID]map[int]struct{}
}

func newEvalIndex() *evalIndex {
	x := &evalIndex{}
	for i := range x.stripes {
		x.stripes[i].files = make(map[eval.FileID]map[int]struct{})
	}
	return x
}

// stripeOf hashes a file ID to its stripe (FNV-1a, folded).
func (x *evalIndex) stripeOf(f eval.FileID) *indexStripe {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(f); i++ {
		h ^= uint64(f[i])
		h *= prime64
	}
	return &x.stripes[h&(indexStripes-1)]
}

// add records that peer p holds an evaluation of file f.
func (x *evalIndex) add(f eval.FileID, p int) {
	s := x.stripeOf(f)
	s.mu.Lock()
	m := s.files[f]
	if m == nil {
		m = make(map[int]struct{}, 4)
		s.files[f] = m
	}
	m[p] = struct{}{}
	s.mu.Unlock()
}

// forEachPeer calls fn for every indexed evaluator of f, under the stripe
// lock. fn must not acquire a shard data lock or touch the index.
func (x *evalIndex) forEachPeer(f eval.FileID, fn func(p int)) {
	s := x.stripeOf(f)
	s.mu.Lock()
	for p := range s.files[f] {
		fn(p)
	}
	s.mu.Unlock()
}

// peers returns a copy of f's evaluator set, in no particular order.
func (x *evalIndex) peers(f eval.FileID) []int {
	s := x.stripeOf(f)
	s.mu.Lock()
	m := s.files[f]
	out := make([]int, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	s.mu.Unlock()
	return out
}

// fileCount returns the number of indexed files.
func (x *evalIndex) fileCount() int {
	n := 0
	for i := range x.stripes {
		s := &x.stripes[i]
		s.mu.Lock()
		n += len(s.files)
		s.mu.Unlock()
	}
	return n
}

// sortedFiles returns every indexed file ID in ascending order — the
// iteration order the reference FM rebuild fixes its float accumulation
// to.
func (x *evalIndex) sortedFiles() []eval.FileID {
	var out []eval.FileID
	for i := range x.stripes {
		s := &x.stripes[i]
		s.mu.Lock()
		for f := range s.files {
			out = append(out, f)
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// prune removes index entries for peers selected by owns whose evaluation
// of the file is dead per the dead predicate, dropping files whose
// evaluator set empties. A nil owns selects every peer. Removal is
// per-entry and commutative, so concurrent pruners over disjoint owner
// sets (per-shard compaction replay) converge to the same index.
func (x *evalIndex) prune(owns func(p int) bool, dead func(p int, f eval.FileID) bool) {
	for i := range x.stripes {
		s := &x.stripes[i]
		s.mu.Lock()
		for f, peers := range s.files {
			for p := range peers {
				if owns != nil && !owns(p) {
					continue
				}
				if dead(p, f) {
					delete(peers, p)
				}
			}
			if len(peers) == 0 {
				delete(s.files, f)
			}
		}
		s.mu.Unlock()
	}
}
