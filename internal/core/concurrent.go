package core

import (
	"fmt"
	"sync"
	"time"

	"mdrep/internal/eval"
	"mdrep/internal/sparse"
)

// Concurrent wraps an Engine behind an RWMutex so one engine can serve
// many goroutines: events take the write lock, while reputation queries
// share the read lock and then run the multi-trust walk against the
// frozen, immutable CSR snapshot entirely outside any lock. This is the
// single concurrency boundary for the reputation core — callers (the
// public mdrep.System, the journal wrapper, the peer node) layer on top of
// it instead of rolling their own serialisation.
//
// The caveat in the locking scheme is that building a trust matrix
// mutates the engine's caches, so a read that misses the TM cache must
// upgrade to the write lock to rebuild. Under a steady query load with
// occasional events this is exactly the behaviour wanted: the first query
// after a change pays for the (incremental) rebuild, every other query
// runs lock-free against the frozen matrix.
type Concurrent struct {
	mu  sync.RWMutex
	eng *Engine
	// obs is re-attached to whatever engine Swap installs, so journal
	// restores keep the instrumentation the caller configured.
	obs *EngineObs
}

// NewConcurrent wraps an existing engine. The caller must not use eng
// directly afterwards.
func NewConcurrent(eng *Engine) *Concurrent { return &Concurrent{eng: eng} }

// NewConcurrentEngine builds a fresh engine for n peers and wraps it.
func NewConcurrentEngine(n int, cfg Config) (*Concurrent, error) {
	eng, err := NewEngine(n, cfg)
	if err != nil {
		return nil, err
	}
	return NewConcurrent(eng), nil
}

// engine loads the wrapped engine pointer under the read lock; Swap makes
// the bare field racy. Callers may use the snapshot's immutable parts
// (population size, configuration, frozen matrices) outside the lock, but
// not its mutable state.
func (c *Concurrent) engine() *Engine {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.eng
}

// observer loads the attached observer under the read lock.
func (c *Concurrent) observer() *EngineObs {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.obs
}

// N returns the population size.
func (c *Concurrent) N() int { return c.engine().N() }

// Config returns the engine configuration.
func (c *Concurrent) Config() Config { return c.engine().Config() }

// Epoch returns the TM rebuild counter.
func (c *Concurrent) Epoch() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.eng.Epoch()
}

// --- mutations (write lock) -------------------------------------------------

// ApplyEvent applies one event under the write lock.
func (c *Concurrent) ApplyEvent(ev Event) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.eng.ApplyEvent(ev)
}

// ApplyBatch applies events in order under a single writer-lock
// acquisition — the group-commit ingest path for bulk sources (the
// massim simulator's per-epoch event batches, journal replay tails),
// which would otherwise pay one lock handoff per event against a
// concurrent query load.
//
// Contract: all-or-report. Every event is prevalidated with
// ValidateEvent before any is applied; on failure ApplyBatch returns a
// *BatchError naming the offending index and NO event of the batch is
// applied. A nil return means the whole batch applied. The sharded
// facade's group-commit path inherits this contract.
func (c *Concurrent) ApplyBatch(evs []Event) error {
	n := c.N()
	for k := range evs {
		if err := ValidateEvent(n, evs[k]); err != nil {
			return &BatchError{Index: k, Err: err}
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for k := range evs {
		if err := c.eng.ApplyEvent(evs[k]); err != nil {
			// Unreachable after prevalidation; kept as a hard failure so
			// a future validation gap cannot silently half-apply.
			panic(fmt.Sprintf("core: prevalidated batch event %d failed: %v", k, err))
		}
	}
	return nil
}

// SetImplicit mirrors Engine.SetImplicit.
func (c *Concurrent) SetImplicit(p int, f eval.FileID, value float64, now time.Duration) error {
	return c.ApplyEvent(Event{Kind: EventSetImplicit, I: p, File: f, Value: value, Time: now})
}

// ObserveRetention mirrors Engine.ObserveRetention.
func (c *Concurrent) ObserveRetention(p int, f eval.FileID, retention time.Duration, deleted bool, now time.Duration) error {
	return c.SetImplicit(p, f, c.Config().Retention.Implicit(retention, deleted), now)
}

// Vote mirrors Engine.Vote.
func (c *Concurrent) Vote(p int, f eval.FileID, value float64, now time.Duration) error {
	return c.ApplyEvent(Event{Kind: EventVote, I: p, File: f, Value: value, Time: now})
}

// RecordDownload mirrors Engine.RecordDownload.
func (c *Concurrent) RecordDownload(downloader, uploader int, f eval.FileID, size int64, now time.Duration) error {
	return c.ApplyEvent(Event{Kind: EventDownload, I: downloader, J: uploader, File: f, Size: size, Time: now})
}

// RateUser mirrors Engine.RateUser.
func (c *Concurrent) RateUser(i, j int, value float64) error {
	return c.ApplyEvent(Event{Kind: EventRateUser, I: i, J: j, Value: value})
}

// AddFriend mirrors Engine.AddFriend.
func (c *Concurrent) AddFriend(i, j int) error {
	return c.RateUser(i, j, c.Config().FriendTrust)
}

// Blacklist mirrors Engine.Blacklist.
func (c *Concurrent) Blacklist(i, j int) error {
	return c.ApplyEvent(Event{Kind: EventBlacklist, I: i, J: j})
}

// Compact mirrors Engine.Compact.
func (c *Concurrent) Compact(now time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.eng.Compact(now)
}

// Swap replaces the wrapped engine — the journal's restore path, which
// rebuilds an engine from a snapshot and must install it atomically. The
// facade's observer carries over to the new engine.
func (c *Concurrent) Swap(eng *Engine) {
	c.mu.Lock()
	defer c.mu.Unlock()
	eng.SetObserver(c.obs)
	c.eng = eng
}

// SetObserver attaches the metrics observer to the facade and its
// current engine (nil detaches).
func (c *Concurrent) SetObserver(o *EngineObs) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.obs = o
	c.eng.SetObserver(o)
}

// Locked runs fn with exclusive access to the wrapped engine. It is the
// escape hatch for compound operations (journal apply+append ordering,
// state export for snapshots) that must observe or mutate the engine
// without interleaving; fn must not retain the engine.
func (c *Concurrent) Locked(fn func(*Engine) error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return fn(c.eng)
}

// --- reads ------------------------------------------------------------------

// TM returns the frozen trust matrix for time now. The fast path takes
// only the read lock (cache hit against the last build); a miss upgrades
// to the write lock and rebuilds incrementally.
func (c *Concurrent) TM(now time.Duration) (*sparse.CSR, error) {
	c.mu.RLock()
	tm, ok := c.eng.CachedTM(now)
	c.mu.RUnlock()
	if ok {
		return tm, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.eng.BuildTM(now)
}

// BuildRM mirrors Engine.BuildRM; the power chain runs outside the lock.
func (c *Concurrent) BuildRM(now time.Duration) (*sparse.CSR, error) {
	tm, err := c.TM(now)
	if err != nil {
		return nil, err
	}
	return tm.Pow(c.Config().Steps)
}

// Reputations returns row i of RM. Only the TM fetch synchronises; the
// k-step walk runs against the immutable snapshot outside any lock.
func (c *Concurrent) Reputations(i int, now time.Duration) (map[int]float64, error) {
	eng := c.engine()
	if err := eng.checkPeer(i); err != nil {
		return nil, err
	}
	tm, err := c.TM(now)
	if err != nil {
		return nil, err
	}
	sp := c.observer().spanRepWalk()
	row, err := tm.RowVecPow(i, eng.Config().Steps)
	sp.End()
	return row, err
}

// ReputationsFromTM runs the multi-trust walk against a caller-held frozen
// matrix; no lock is held during the walk.
func (c *Concurrent) ReputationsFromTM(tm *sparse.CSR, i int) (map[int]float64, error) {
	eng := c.engine()
	if err := eng.checkPeer(i); err != nil {
		return nil, err
	}
	return tm.RowVecPow(i, eng.Config().Steps)
}

// Evaluation mirrors Engine.Evaluation under the read lock.
func (c *Concurrent) Evaluation(p int, f eval.FileID, now time.Duration) (float64, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.eng.Evaluation(p, f, now)
}

// JudgeFile mirrors Engine.JudgeFile: reputations via the shared TM path,
// then the threshold decision (pure, configuration-only).
func (c *Concurrent) JudgeFile(i int, owners []OwnerEvaluation, now time.Duration) (Judgement, error) {
	reps, err := c.Reputations(i, now)
	if err != nil {
		return Judgement{}, err
	}
	return c.engine().judgeWith(reps, owners)
}

// JudgeFileFromTM mirrors Engine.JudgeFileFromTM; no lock is held during
// the walk.
func (c *Concurrent) JudgeFileFromTM(tm *sparse.CSR, i int, owners []OwnerEvaluation) (Judgement, error) {
	return c.engine().JudgeFileFromTM(tm, i, owners)
}

// CollectOwnerEvaluations mirrors Engine.CollectOwnerEvaluations under the
// read lock.
func (c *Concurrent) CollectOwnerEvaluations(f eval.FileID, owners []int, now time.Duration) []OwnerEvaluation {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.eng.CollectOwnerEvaluations(f, owners, now)
}

// ExportState deep-copies the engine state under the read lock.
func (c *Concurrent) ExportState() *EngineState {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.eng.ExportState()
}
