package core

import (
	"math"
	"testing"
	"time"

	"mdrep/internal/eval"
	"mdrep/internal/sparse"
)

func mustEngine(t *testing.T, n int, cfg Config) *Engine {
	t.Helper()
	e, err := NewEngine(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Alpha = -0.1 },
		func(c *Config) { c.Alpha, c.Beta, c.Gamma = 0.5, 0.5, 0.5 },
		func(c *Config) { c.Blend = eval.Blend{Eta: 1, Rho: 1} },
		func(c *Config) { c.Steps = 0 },
		func(c *Config) { c.Window = -time.Second },
		func(c *Config) { c.FakeThreshold = 1.5 },
		func(c *Config) { c.FriendTrust = -1 },
	}
	for i, mutate := range mutations {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("mutation %d validated", i)
		}
	}
}

func TestNewEngineRejectsBadArgs(t *testing.T) {
	if _, err := NewEngine(0, DefaultConfig()); err == nil {
		t.Fatal("empty population accepted")
	}
	bad := DefaultConfig()
	bad.Steps = 0
	if _, err := NewEngine(3, bad); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestEngineBoundsChecks(t *testing.T) {
	e := mustEngine(t, 3, DefaultConfig())
	if err := e.SetImplicit(5, "f", 0.5, 0); err == nil {
		t.Fatal("out-of-range peer accepted by SetImplicit")
	}
	if err := e.Vote(-1, "f", 0.5, 0); err == nil {
		t.Fatal("out-of-range peer accepted by Vote")
	}
	if err := e.RecordDownload(0, 9, "f", 1, 0); err == nil {
		t.Fatal("out-of-range uploader accepted")
	}
	if err := e.RecordDownload(1, 1, "f", 1, 0); err == nil {
		t.Fatal("self-download accepted")
	}
	if err := e.RecordDownload(0, 1, "f", -5, 0); err == nil {
		t.Fatal("negative size accepted")
	}
	if err := e.RateUser(0, 0, 0.5); err == nil {
		t.Fatal("self-rating accepted")
	}
	if err := e.RateUser(0, 1, 2); err == nil {
		t.Fatal("out-of-range rating accepted")
	}
}

// fmPairConfig gives a pure file-based TM so FM values are directly
// observable through BuildTM.
func fmOnlyConfig() Config {
	cfg := DefaultConfig()
	cfg.Alpha, cfg.Beta, cfg.Gamma = 1, 0, 0
	cfg.Blend = eval.Blend{Eta: 0, Rho: 1} // votes only, exact values
	return cfg
}

func TestBuildFMEquation2(t *testing.T) {
	e := mustEngine(t, 3, fmOnlyConfig())
	// Peers 0 and 1 co-evaluate files a and b.
	mustVote := func(p int, f eval.FileID, v float64) {
		t.Helper()
		if err := e.Vote(p, f, v, 0); err != nil {
			t.Fatal(err)
		}
	}
	mustVote(0, "a", 1.0)
	mustVote(1, "a", 0.8)
	mustVote(0, "b", 0.2)
	mustVote(1, "b", 0.6)
	fm := e.BuildFM(0)
	// FT_01 = 1 - (|1-0.8| + |0.2-0.6|)/2 = 1 - 0.3 = 0.7, and it is the
	// only entry in rows 0 and 1, so FM_01 = FM_10 = 1 after
	// normalisation.
	if got := fm.Get(0, 1); math.Abs(got-1) > 1e-12 {
		t.Fatalf("FM_01 = %v, want 1 (sole entry normalised)", got)
	}
	// Peer 2 evaluated nothing: empty row.
	if fm.RowNNZ(2) != 0 {
		t.Fatal("peer with no evaluations has FM entries")
	}
}

func TestBuildFMRelativeSimilarity(t *testing.T) {
	e := mustEngine(t, 3, fmOnlyConfig())
	mustVote := func(p int, f eval.FileID, v float64) {
		t.Helper()
		if err := e.Vote(p, f, v, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Peer 0 agrees perfectly with peer 1, disagrees with peer 2.
	mustVote(0, "x", 1.0)
	mustVote(1, "x", 1.0)
	mustVote(2, "x", 0.0)
	fm := e.BuildFM(0)
	// FT_01 = 1, FT_02 = 0 (dropped), FT_12 = 0 (dropped).
	if got := fm.Get(0, 1); math.Abs(got-1) > 1e-12 {
		t.Fatalf("FM_01 = %v, want 1", got)
	}
	if got := fm.Get(0, 2); got != 0 {
		t.Fatalf("FM_02 = %v, want 0 (total disagreement)", got)
	}
}

func TestBuildFMDisjointEvaluationsNoEdge(t *testing.T) {
	e := mustEngine(t, 2, fmOnlyConfig())
	if err := e.Vote(0, "a", 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := e.Vote(1, "b", 1, 0); err != nil {
		t.Fatal(err)
	}
	fm := e.BuildFM(0)
	if fm.NNZ() != 0 {
		t.Fatal("disjoint evaluation sets produced an FM edge")
	}
}

func TestBuildFMWindowExpiry(t *testing.T) {
	cfg := fmOnlyConfig()
	cfg.Window = time.Hour
	e := mustEngine(t, 2, cfg)
	if err := e.Vote(0, "a", 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := e.Vote(1, "a", 1, 0); err != nil {
		t.Fatal(err)
	}
	if fm := e.BuildFM(30 * time.Minute); fm.Get(0, 1) == 0 {
		t.Fatal("live co-evaluation produced no edge")
	}
	if fm := e.BuildFM(3 * time.Hour); fm.NNZ() != 0 {
		t.Fatal("expired evaluations still produce FM edges")
	}
}

func TestBuildDMEquation4(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Alpha, cfg.Beta, cfg.Gamma = 0, 1, 0
	cfg.Blend = eval.Blend{Eta: 0, Rho: 1}
	e := mustEngine(t, 3, cfg)
	// Peer 0 downloads from peers 1 and 2 and evaluates the files.
	if err := e.RecordDownload(0, 1, "big", 1000, 0); err != nil {
		t.Fatal(err)
	}
	if err := e.RecordDownload(0, 2, "small", 500, 0); err != nil {
		t.Fatal(err)
	}
	if err := e.Vote(0, "big", 1.0, 0); err != nil {
		t.Fatal(err)
	}
	if err := e.Vote(0, "small", 0.5, 0); err != nil {
		t.Fatal(err)
	}
	dm := e.BuildDM(0)
	// VD_01 = 1.0*1000 = 1000, VD_02 = 0.5*500 = 250 → normalised 0.8 / 0.2.
	if got := dm.Get(0, 1); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("DM_01 = %v, want 0.8", got)
	}
	if got := dm.Get(0, 2); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("DM_02 = %v, want 0.2", got)
	}
}

func TestBuildDMUnevaluatedUsesFloor(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Alpha, cfg.Beta, cfg.Gamma = 0, 1, 0
	e := mustEngine(t, 2, cfg)
	if err := e.RecordDownload(0, 1, "f", 100, 0); err != nil {
		t.Fatal(err)
	}
	dm := e.BuildDM(0)
	if got := dm.Get(0, 1); math.Abs(got-1) > 1e-12 {
		t.Fatalf("DM_01 = %v, want 1 (sole floor-weighted entry)", got)
	}
}

func TestBuildDMFakeFileEarnsNothing(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Alpha, cfg.Beta, cfg.Gamma = 0, 1, 0
	cfg.Blend = eval.Blend{Eta: 0, Rho: 1}
	e := mustEngine(t, 3, cfg)
	if err := e.RecordDownload(0, 1, "real", 100, 0); err != nil {
		t.Fatal(err)
	}
	if err := e.RecordDownload(0, 2, "fake", 100000, 0); err != nil {
		t.Fatal(err)
	}
	if err := e.Vote(0, "real", 1.0, 0); err != nil {
		t.Fatal(err)
	}
	if err := e.Vote(0, "fake", 0.0, 0); err != nil { // judged fake
		t.Fatal(err)
	}
	dm := e.BuildDM(0)
	if got := dm.Get(0, 2); got != 0 {
		t.Fatalf("fake upload earned DM %v, want 0", got)
	}
	if got := dm.Get(0, 1); math.Abs(got-1) > 1e-12 {
		t.Fatalf("DM_01 = %v, want 1", got)
	}
}

func TestBuildUMAndBlacklist(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Alpha, cfg.Beta, cfg.Gamma = 0, 0, 1
	e := mustEngine(t, 4, cfg)
	if err := e.RateUser(0, 1, 0.9); err != nil {
		t.Fatal(err)
	}
	if err := e.RateUser(0, 2, 0.3); err != nil {
		t.Fatal(err)
	}
	if err := e.Blacklist(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := e.RateUser(0, 2, 1.0); err != nil { // ignored: blacklisted
		t.Fatal(err)
	}
	um := e.BuildUM()
	if got := um.Get(0, 1); math.Abs(got-1) > 1e-12 {
		t.Fatalf("UM_01 = %v, want 1 after blacklist removed peer 2", got)
	}
	if got := um.Get(0, 2); got != 0 {
		t.Fatalf("UM_02 = %v, want 0 (blacklisted)", got)
	}
}

func TestAddFriendUsesConfiguredTrust(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Alpha, cfg.Beta, cfg.Gamma = 0, 0, 1
	cfg.FriendTrust = 0.8
	e := mustEngine(t, 3, cfg)
	if err := e.AddFriend(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := e.RateUser(0, 2, 0.2); err != nil {
		t.Fatal(err)
	}
	um := e.BuildUM()
	if got := um.Get(0, 1); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("UM_01 = %v, want 0.8", got)
	}
}

func TestBuildTMConvexIntegration(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Blend = eval.Blend{Eta: 0, Rho: 1}
	e := mustEngine(t, 3, cfg)
	// Give peer 0 all three dimensions toward peer 1.
	if err := e.Vote(0, "a", 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := e.Vote(1, "a", 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := e.RecordDownload(0, 1, "a", 100, 0); err != nil {
		t.Fatal(err)
	}
	if err := e.RateUser(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	tm, err := e.BuildTM(0)
	if err != nil {
		t.Fatal(err)
	}
	// All three normalised matrices have exactly one entry (0,1) = 1, so
	// TM_01 = α + β + γ = 1.
	if got := tm.Get(0, 1); math.Abs(got-1) > 1e-12 {
		t.Fatalf("TM_01 = %v, want 1", got)
	}
}

func TestBuildTMSubStochasticWhenDimensionMissing(t *testing.T) {
	cfg := DefaultConfig() // α=0.5 β=0.3 γ=0.2
	cfg.Blend = eval.Blend{Eta: 0, Rho: 1}
	e := mustEngine(t, 2, cfg)
	// Only the file dimension exists.
	if err := e.Vote(0, "a", 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := e.Vote(1, "a", 1, 0); err != nil {
		t.Fatal(err)
	}
	tm, err := e.BuildTM(0)
	if err != nil {
		t.Fatal(err)
	}
	if got := tm.RowSum(0); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("row sum %v, want α=0.5 (missing evidence not reweighted)", got)
	}
}

func TestReputationsMatchBuildRM(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Steps = 2
	cfg.Blend = eval.Blend{Eta: 0, Rho: 1}
	e := mustEngine(t, 4, cfg)
	// Chain of similarity 0→1→2 plus downloads 0→3.
	files := []struct {
		p int
		f eval.FileID
		v float64
	}{
		{0, "a", 1}, {1, "a", 0.9}, {1, "b", 0.8}, {2, "b", 0.7}, {3, "a", 0.4},
	}
	for _, x := range files {
		if err := e.Vote(x.p, x.f, x.v, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.RecordDownload(0, 3, "a", 500, 0); err != nil {
		t.Fatal(err)
	}
	if err := e.RateUser(2, 0, 0.5); err != nil {
		t.Fatal(err)
	}
	rm, err := e.BuildRM(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		reps, err := e.Reputations(i, 0)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 4; j++ {
			if math.Abs(reps[j]-rm.Get(i, j)) > 1e-9 {
				t.Fatalf("Reputations(%d)[%d] = %v, RM = %v", i, j, reps[j], rm.Get(i, j))
			}
		}
	}
}

func TestMultiTrustReachesFriendOfFriend(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Alpha, cfg.Beta, cfg.Gamma = 0, 0, 1
	e := mustEngine(t, 3, cfg)
	// 0 trusts 1, 1 trusts 2; no direct 0→2 edge.
	if err := e.RateUser(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := e.RateUser(1, 2, 1); err != nil {
		t.Fatal(err)
	}
	one, err := e.Reputations(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if one[2] != 0 {
		t.Fatalf("one-step reputation reached 2 hops: %v", one[2])
	}
	e2 := mustEngine(t, 3, cfg)
	e2.cfg.Steps = 2
	if err := e2.RateUser(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := e2.RateUser(1, 2, 1); err != nil {
		t.Fatal(err)
	}
	two, err := e2.Reputations(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(two[2]-1) > 1e-12 {
		t.Fatalf("two-step reputation of friend-of-friend = %v, want 1", two[2])
	}
}

func TestCompactPrunesIndex(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Window = time.Hour
	e := mustEngine(t, 2, cfg)
	if err := e.Vote(0, "a", 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := e.Vote(1, "a", 1, 0); err != nil {
		t.Fatal(err)
	}
	e.Compact(3 * time.Hour)
	if n := e.evaluators.fileCount(); n != 0 {
		t.Fatalf("evaluator index not pruned: %d files", n)
	}
	if fm := e.BuildFM(3 * time.Hour); fm.NNZ() != 0 {
		t.Fatal("FM edges from compacted evaluations")
	}
}

func TestEvaluationAccessor(t *testing.T) {
	e := mustEngine(t, 2, DefaultConfig())
	if _, ok := e.Evaluation(0, "f", 0); ok {
		t.Fatal("missing evaluation reported present")
	}
	if err := e.SetImplicit(0, "f", 0.7, 0); err != nil {
		t.Fatal(err)
	}
	v, ok := e.Evaluation(0, "f", 0)
	if !ok || math.Abs(v-0.7) > 1e-12 {
		t.Fatalf("Evaluation = %v, %v", v, ok)
	}
	if _, ok := e.Evaluation(9, "f", 0); ok {
		t.Fatal("out-of-range peer reported present")
	}
}

func TestMaxEvaluatorsPerFileCapsPairing(t *testing.T) {
	cfg := fmOnlyConfig()
	cfg.MaxEvaluatorsPerFile = 5
	e := mustEngine(t, 50, cfg)
	// 40 peers agree on one file; uncapped this is 780 pairs, capped it
	// is C(5,2) = 10.
	for p := 0; p < 40; p++ {
		if err := e.Vote(p, "popular", 0.9, 0); err != nil {
			t.Fatal(err)
		}
	}
	fm := e.BuildFM(0)
	// 5 sampled evaluators → each has edges to the other 4 at most.
	maxRowLen := 0
	rows := 0
	for i := 0; i < 50; i++ {
		if l := fm.RowNNZ(i); l > 0 {
			rows++
			if l > maxRowLen {
				maxRowLen = l
			}
		}
	}
	if rows != 5 {
		t.Fatalf("cap kept %d evaluators, want 5", rows)
	}
	if maxRowLen > 4 {
		t.Fatalf("row has %d edges, cap broken", maxRowLen)
	}
}

func TestMaxEvaluatorsDeterministic(t *testing.T) {
	build := func() []sparse.Entry {
		cfg := fmOnlyConfig()
		cfg.MaxEvaluatorsPerFile = 3
		e := mustEngine(t, 30, cfg)
		for p := 0; p < 20; p++ {
			if err := e.Vote(p, "f", float64(p)/20, 0); err != nil {
				t.Fatal(err)
			}
		}
		return e.BuildFM(0).Entries()
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatal("capped FM not deterministic")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("capped FM not deterministic")
		}
	}
}

func TestNegativeEvaluatorCapRejected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxEvaluatorsPerFile = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative cap accepted")
	}
}
