package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"mdrep/internal/eval"
	"mdrep/internal/obs"
	"mdrep/internal/sparse"
)

// Engine is the reputation system state for a population of peers indexed
// [0, n). It ingests the observable behaviour of §3.1 — file evaluations,
// download volumes and user ratings — and produces trust matrices and
// reputations.
//
// The matrix pipeline is incremental: ApplyEvent marks the dimension rows
// an event invalidates (a vote or retention signal dirties the FM rows of
// the file's co-evaluators plus the voter's DM row, a download dirties one
// DM row, a rating one UM row), and BuildFM/BuildDM/BuildUM patch only the
// dirty rows of cached matrices before freezing them into immutable CSR
// form. BuildTM caches the frozen integration and bumps an epoch counter
// whenever it changes. Results are bit-identical to a from-scratch rebuild
// — the differential tests in incremental_test.go enforce it — so journal
// replay (internal/journal) reproduces identical matrices regardless of
// when builds happened in the original run.
//
// The Engine itself is not safe for concurrent use — even read-looking
// calls like Reputations patch the caches. Wrap it in Concurrent to share
// it: events take the write lock while reputation queries share the read
// lock against the frozen CSR snapshot.
type Engine struct {
	cfg    Config
	n      int
	stores []*eval.Store
	// downloads[i][j] accumulates the files peer i fetched from peer j
	// (Eq. 4 input). Repeated downloads of the same file count once per
	// occurrence, as in the Maze log.
	downloads []map[int][]downloadEntry
	// userTrust[i][j] is UT_ij (Eq. 6 input).
	userTrust []map[int]float64
	// blacklist[i][j] forces UT_ij to zero regardless of later ratings.
	blacklist []map[int]struct{}
	// evaluators is the inverted index file → peers with a live
	// evaluation; it keeps FM construction proportional to actual
	// co-evaluation instead of O(n²). The index is stripe-locked so the
	// sharded facade's per-shard writers can share it.
	evaluators *evalIndex

	// Incremental build state. fm/dm/um hold raw (unnormalised) cached
	// rows plus their frozen row-normalised CSR; tm is the cached frozen
	// integration of Eq. (7).
	fm, dm, um dimCache
	tm         *sparse.CSR
	// tmSrc records the frozen dimensions tm was integrated from; TM is
	// stale whenever any current frozen dimension differs (pointer
	// identity — frozen CSRs are immutable, so identity implies equality).
	tmSrc [3]*sparse.CSR
	epoch uint64
	// lastNow is the virtual time of the most recent build; window expiry
	// between builds is detected by scanning for records that died in
	// (lastNow, now].
	lastNow    time.Duration
	lastNowSet bool

	// obs is the optional metrics observer (see obs.go); nil means
	// uninstrumented, the default.
	obs *EngineObs
}

type downloadEntry struct {
	file eval.FileID
	size int64
}

// dimCache is the incremental state of one trust dimension.
type dimCache struct {
	// rows are the raw (unnormalised) cached rows; nil until first build.
	rows []map[int]float64
	// frozen is the row-normalised CSR of rows; nil when stale.
	frozen *sparse.CSR
	// dirty lists rows that must be recomputed; ignored while all is set.
	dirty map[int]struct{}
	// all forces a full recompute (initial build, restore, time reversal).
	all bool
}

func newDimCache() dimCache {
	return dimCache{dirty: make(map[int]struct{}), all: true}
}

// markRow invalidates one cached row and the frozen forms above it.
func (d *dimCache) markRow(i int) {
	if !d.all {
		d.dirty[i] = struct{}{}
	}
	d.frozen = nil
}

// invalidate forces a full recompute.
func (d *dimCache) invalidate() {
	d.all = true
	d.frozen = nil
	if len(d.dirty) > 0 {
		d.dirty = make(map[int]struct{})
	}
}

// stale reports whether the frozen form is out of date.
func (d *dimCache) stale() bool { return d.frozen == nil }

// NewEngine builds an engine for n peers.
func NewEngine(n int, cfg Config) (*Engine, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: population %d, want >= 1", n)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:        cfg,
		n:          n,
		stores:     make([]*eval.Store, n),
		downloads:  make([]map[int][]downloadEntry, n),
		userTrust:  make([]map[int]float64, n),
		blacklist:  make([]map[int]struct{}, n),
		evaluators: newEvalIndex(),
		fm:         newDimCache(),
		dm:         newDimCache(),
		um:         newDimCache(),
	}
	for i := range e.stores {
		s, err := eval.NewStore(cfg.Blend, cfg.Window)
		if err != nil {
			return nil, err
		}
		e.stores[i] = s
	}
	return e, nil
}

// N returns the population size.
func (e *Engine) N() int { return e.n }

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// Epoch returns the number of times the cached TM has been rebuilt with
// changes; callers use it to notice when cached per-peer reputation rows
// are stale.
func (e *Engine) Epoch() uint64 { return e.epoch }

func (e *Engine) checkPeer(p int) error {
	if p < 0 || p >= e.n {
		return fmt.Errorf("core: peer %d outside [0, %d)", p, e.n)
	}
	return nil
}

func (e *Engine) indexEvaluator(f eval.FileID, p int) {
	e.evaluators.add(f, p)
}

// --- dirty-row rules --------------------------------------------------------

// Dimension discriminators for markFunc callbacks.
const (
	dimFM = iota
	dimDM
	dimUM
)

// markFunc receives cache-invalidation effects of an evidence mutation:
// dimension dim's row must be recomputed before the next build. The
// unsharded Engine routes marks into its own dimCaches; core.Sharded
// routes them to the owning shard's dirty tracker. A markFunc may be
// called under an index stripe lock and must not acquire shard data
// locks.
type markFunc func(dim int, row int)

// markDim is the Engine's own markFunc.
func (e *Engine) markDim(dim int, row int) {
	switch dim {
	case dimFM:
		e.fm.markRow(row)
	case dimDM:
		e.dm.markRow(row)
	case dimUM:
		e.um.markRow(row)
	}
}

// dirtyEvaluationTo records that peer p's evaluation of file f changed:
// p's DM row re-weights (Eq. 4 uses E_ik), and the FM rows of every
// co-evaluator of f shift (FT is pairwise over shared files, and the
// deterministic evaluator sample of a capped file can change membership).
func (e *Engine) dirtyEvaluationTo(p int, f eval.FileID, mark markFunc) {
	mark(dimDM, p)
	mark(dimFM, p)
	e.evaluators.forEachPeer(f, func(j int) { mark(dimFM, j) })
}

// dirtyEvaluation is dirtyEvaluationTo into the engine's own caches.
func (e *Engine) dirtyEvaluation(p int, f eval.FileID) {
	e.dirtyEvaluationTo(p, f, e.markDim)
}

// dirtyExpiry is dirtyEvaluation for a record that expired or was
// compacted away rather than rewritten.
func (e *Engine) dirtyExpiry(p int, f eval.FileID) { e.dirtyEvaluation(p, f) }

// advanceTime reconciles the caches with the virtual clock before a build
// at now. Builds at an earlier time than the caches were computed for
// invalidate everything (liveness is evaluated at build time, so history
// is not monotone when time runs backwards); moving forward only dirties
// the rows of records that expired in between.
func (e *Engine) advanceTime(now time.Duration) {
	if !e.lastNowSet {
		e.lastNow, e.lastNowSet = now, true
		return
	}
	if now == e.lastNow {
		return
	}
	if now < e.lastNow {
		e.fm.invalidate()
		e.dm.invalidate()
		e.um.invalidate()
		e.lastNow = now
		return
	}
	if e.cfg.Window > 0 {
		e.scanExpired(e.lastNow, now, nil, e.markDim)
	}
	e.lastNow = now
}

// scanExpired marks the rows invalidated by records that expired in
// (prev, now], restricted to peers selected by owns (nil = all). The
// sharded facade runs one scan per shard in parallel; expiry of p's
// evaluation of f invalidates FM rows of f's co-evaluators in any shard,
// which mark routes to the right dirty tracker.
func (e *Engine) scanExpired(prev, now time.Duration, owns func(p int) bool, mark markFunc) {
	for p, s := range e.stores {
		if owns != nil && !owns(p) {
			continue
		}
		for _, f := range s.ExpiredBetween(prev, now) {
			e.dirtyEvaluationTo(p, f, mark)
		}
	}
}

// --- incremental row construction ------------------------------------------

// fileEvaluators is the per-build memo of one file's live, deterministically
// sampled evaluator list: peers ascending, values parallel.
type fileEvaluators struct {
	peers []int
	vals  []float64
}

// liveEvaluators computes (and memoises) file f's live evaluators at now,
// sorted by peer index and strided down to the MaxEvaluatorsPerFile cap —
// exactly the list the reference full rebuild pairs up, so per-row
// recomputation reproduces its float arithmetic bit for bit.
func (e *Engine) liveEvaluators(f eval.FileID, now time.Duration, memo map[eval.FileID]*fileEvaluators) *fileEvaluators {
	if fe, ok := memo[f]; ok {
		return fe
	}
	var live []int
	var vals []float64
	e.evaluators.forEachPeer(f, func(p int) {
		if v, ok := e.stores[p].Get(f, now); ok {
			live = append(live, p)
			vals = append(vals, v)
		}
	})
	sort.Sort(&evaluatorsByPeer{peers: live, vals: vals})
	if maxEval := e.cfg.MaxEvaluatorsPerFile; maxEval > 0 && len(live) > maxEval {
		// Deterministic sample: keep a strided subset of the ordered
		// evaluators so the kept set is stable across rebuilds and spans
		// the index range.
		stride := float64(len(live)) / float64(maxEval)
		for k := 0; k < maxEval; k++ {
			i := int(float64(k) * stride)
			live[k], vals[k] = live[i], vals[i]
		}
		live, vals = live[:maxEval], vals[:maxEval]
	}
	fe := &fileEvaluators{peers: live, vals: vals}
	memo[f] = fe
	return fe
}

// fmRow recomputes row i of the raw (unnormalised) file-based matrix
// (Eq. 2): FT_ij = 1 - (1/m)·Σ_{k∈F} |E_ik − E_jk| over the co-evaluated
// set F. Files iterate in ascending FileID order and pair contributions
// accumulate per co-evaluator in that order — the same order the full
// rebuild uses, so the sums are bit-identical.
func (e *Engine) fmRow(i int, now time.Duration, memo map[eval.FileID]*fileEvaluators) map[int]float64 {
	files := e.stores[i].Files(now)
	type pairAcc struct {
		sum   float64
		count int
	}
	acc := make(map[int]*pairAcc)
	for _, f := range files {
		fe := e.liveEvaluators(f, now, memo)
		pos := -1
		for idx, p := range fe.peers {
			if p == i {
				pos = idx
				break
			}
		}
		if pos < 0 {
			continue // i evaluated f but fell out of the deterministic sample
		}
		for idx, j := range fe.peers {
			if j == i {
				continue
			}
			a := acc[j]
			if a == nil {
				a = &pairAcc{}
				acc[j] = a
			}
			a.sum += math.Abs(fe.vals[pos] - fe.vals[idx])
			a.count++
		}
	}
	if len(acc) == 0 {
		return nil
	}
	row := make(map[int]float64, len(acc))
	for j, a := range acc {
		if ft := 1 - a.sum/float64(a.count); ft > 0 {
			row[j] = ft
		}
	}
	return row
}

// dmRow recomputes row i of the raw download-volume matrix (Eq. 4):
// VD_ij = Σ_{k ∈ D_ij} E_ik·S_k, with unevaluated files contributing the
// retention floor. Entries accumulate in ledger (event) order per
// uploader, as in the full rebuild.
func (e *Engine) dmRow(i int, now time.Duration) map[int]float64 {
	per := e.downloads[i]
	if len(per) == 0 {
		return nil
	}
	floor := e.cfg.Retention.Floor
	row := make(map[int]float64, len(per))
	for j, entries := range per {
		vd := 0.0
		for _, d := range entries {
			ev, ok := e.stores[i].Get(d.file, now)
			if !ok {
				ev = floor
			}
			vd += ev * float64(d.size)
		}
		if vd > 0 {
			row[j] = vd
		}
	}
	return row
}

// umRow recomputes row i of the raw user-based matrix (Eq. 6).
func (e *Engine) umRow(i int) map[int]float64 {
	per := e.userTrust[i]
	if len(per) == 0 {
		return nil
	}
	row := make(map[int]float64, len(per))
	for j, v := range per {
		if v > 0 {
			row[j] = v
		}
	}
	return row
}

// refresh patches a dimension cache with rowFn and refreezes it; it
// reports whether the frozen matrix changed.
func (e *Engine) refresh(d *dimCache, rowFn func(i int) map[int]float64) bool {
	if !d.stale() {
		return false
	}
	if d.all || d.rows == nil {
		d.rows = make([]map[int]float64, e.n)
		for i := 0; i < e.n; i++ {
			d.rows[i] = rowFn(i)
		}
	} else {
		for i := range d.dirty {
			d.rows[i] = rowFn(i)
		}
	}
	d.all = false
	if len(d.dirty) > 0 {
		d.dirty = make(map[int]struct{})
	}
	d.frozen = sparse.FreezeNormalized(e.n, d.rows)
	return true
}

func (e *Engine) refreshFM(now time.Duration) bool {
	if !e.fm.stale() {
		return false
	}
	var sp obs.Span
	if e.obs != nil {
		e.obs.dirtyFM.Add(e.dirtyCount(&e.fm))
		sp = e.obs.tracer.Start(e.obs.buildFM)
	}
	memo := make(map[eval.FileID]*fileEvaluators)
	changed := e.refresh(&e.fm, func(i int) map[int]float64 { return e.fmRow(i, now, memo) })
	sp.End()
	return changed
}

func (e *Engine) refreshDM(now time.Duration) bool {
	if !e.dm.stale() {
		return false
	}
	var sp obs.Span
	if e.obs != nil {
		e.obs.dirtyDM.Add(e.dirtyCount(&e.dm))
		sp = e.obs.tracer.Start(e.obs.buildDM)
	}
	changed := e.refresh(&e.dm, func(i int) map[int]float64 { return e.dmRow(i, now) })
	sp.End()
	return changed
}

func (e *Engine) refreshUM() bool {
	if !e.um.stale() {
		return false
	}
	var sp obs.Span
	if e.obs != nil {
		e.obs.dirtyUM.Add(e.dirtyCount(&e.um))
		sp = e.obs.tracer.Start(e.obs.buildUM)
	}
	changed := e.refresh(&e.um, func(i int) map[int]float64 { return e.umRow(i) })
	sp.End()
	return changed
}

// --- public build API -------------------------------------------------------

// SetImplicit records peer p's implicit (retention-derived) evaluation of
// file f.
func (e *Engine) SetImplicit(p int, f eval.FileID, value float64, now time.Duration) error {
	return e.ApplyEvent(Event{Kind: EventSetImplicit, I: p, File: f, Value: value, Time: now})
}

// ObserveRetention records an implicit evaluation computed from the
// configured retention model.
func (e *Engine) ObserveRetention(p int, f eval.FileID, retention time.Duration, deleted bool, now time.Duration) error {
	return e.SetImplicit(p, f, e.cfg.Retention.Implicit(retention, deleted), now)
}

// Vote records peer p's explicit evaluation of file f.
func (e *Engine) Vote(p int, f eval.FileID, value float64, now time.Duration) error {
	return e.ApplyEvent(Event{Kind: EventVote, I: p, File: f, Value: value, Time: now})
}

// Evaluation returns peer p's blended evaluation of f, if live.
func (e *Engine) Evaluation(p int, f eval.FileID, now time.Duration) (float64, bool) {
	if e.checkPeer(p) != nil {
		return 0, false
	}
	return e.stores[p].Get(f, now)
}

// RecordDownload registers that downloader fetched file f (size bytes)
// from uploader; it feeds VD of Eq. (4). The evaluation weight E_ik is
// resolved lazily when DM is built, so a later vote or retention update
// retroactively re-weights the volume — sharing a file the downloader
// ends up judging fake earns no download-volume trust.
func (e *Engine) RecordDownload(downloader, uploader int, f eval.FileID, size int64, now time.Duration) error {
	return e.ApplyEvent(Event{Kind: EventDownload, I: downloader, J: uploader, File: f, Size: size, Time: now})
}

// RateUser records UT_ij = value (Eq. 6). Blacklisted targets stay at
// zero.
func (e *Engine) RateUser(i, j int, value float64) error {
	return e.ApplyEvent(Event{Kind: EventRateUser, I: i, J: j, Value: value})
}

// AddFriend assigns the configured friend-list trust to j (§3.1.3).
func (e *Engine) AddFriend(i, j int) error {
	return e.RateUser(i, j, e.cfg.FriendTrust)
}

// Blacklist sets UT_ij to zero permanently for i's view of j (§3.1.3:
// "the users in the blacklist … should be assigned with zero").
func (e *Engine) Blacklist(i, j int) error {
	return e.ApplyEvent(Event{Kind: EventBlacklist, I: i, J: j})
}

// BuildFM returns the frozen file-based one-step matrix (Eq. 2–3) at time
// now, patching only rows invalidated since the previous build.
func (e *Engine) BuildFM(now time.Duration) *sparse.CSR {
	e.advanceTime(now)
	e.refreshFM(now)
	return e.fm.frozen
}

// BuildDM returns the frozen download-volume matrix (Eq. 4–5) at time now.
func (e *Engine) BuildDM(now time.Duration) *sparse.CSR {
	e.advanceTime(now)
	e.refreshDM(now)
	return e.dm.frozen
}

// BuildUM returns the frozen user-based matrix (Eq. 6).
func (e *Engine) BuildUM() *sparse.CSR {
	e.refreshUM()
	return e.um.frozen
}

// BuildTM integrates the three dimensions into the one-step direct trust
// matrix of Eq. (7) and caches the frozen result; repeated calls with no
// intervening changes return the same *sparse.CSR. Rows of TM are
// sub-stochastic when a peer lacks one of the dimensions; that is
// intentional — missing evidence must not be re-weighted into false
// confidence.
func (e *Engine) BuildTM(now time.Duration) (*sparse.CSR, error) {
	e.advanceTime(now)
	e.refreshFM(now)
	e.refreshDM(now)
	e.refreshUM()
	src := [3]*sparse.CSR{e.fm.frozen, e.dm.frozen, e.um.frozen}
	if e.tm == nil || src != e.tmSrc {
		var sp obs.Span
		if e.obs != nil {
			sp = e.obs.tracer.Start(e.obs.refreeze)
		}
		tm, err := sparse.WeightedSum(e.n, []sparse.Weighted{
			{Scale: e.cfg.Alpha, M: e.fm.frozen},
			{Scale: e.cfg.Beta, M: e.dm.frozen},
			{Scale: e.cfg.Gamma, M: e.um.frozen},
		})
		if err != nil {
			return nil, err
		}
		e.tm = tm
		e.tmSrc = src
		e.epoch++
		sp.End()
		if e.obs != nil {
			e.obs.refreezes.Inc()
		}
	}
	return e.tm, nil
}

// InvalidateCaches drops every cached dimension matrix and the frozen TM,
// forcing the next build to recompute all rows from scratch. Normal event
// flow never needs it — ApplyEvent tracks dirty rows precisely — but it
// gives tests and benchmarks a way to compare incremental patching against
// a full rebuild on the same evidence.
func (e *Engine) InvalidateCaches() {
	e.fm.invalidate()
	e.dm.invalidate()
	e.um.invalidate()
	e.tm = nil
}

// CachedTM returns the frozen TM for time now without rebuilding, if the
// cache is current: no dirty rows, and either the build time matches or
// nothing can expire (Window == 0 makes the matrices independent of the
// clock). Concurrent's read path uses this under the shared lock.
func (e *Engine) CachedTM(now time.Duration) (*sparse.CSR, bool) {
	if e.tm == nil || e.fm.stale() || e.dm.stale() || e.um.stale() {
		return nil, false
	}
	if e.tmSrc != [3]*sparse.CSR{e.fm.frozen, e.dm.frozen, e.um.frozen} {
		return nil, false
	}
	if !e.lastNowSet || (now != e.lastNow && e.cfg.Window > 0) {
		return nil, false
	}
	return e.tm, true
}

// BuildRM computes the full reputation matrix RM = TM^n (Eq. 8).
func (e *Engine) BuildRM(now time.Duration) (*sparse.CSR, error) {
	tm, err := e.BuildTM(now)
	if err != nil {
		return nil, err
	}
	var sp obs.Span
	if e.obs != nil {
		sp = e.obs.tracer.Start(e.obs.buildRM)
	}
	rm, err := tm.Pow(e.cfg.Steps)
	sp.End()
	return rm, err
}

// Reputations returns row i of RM — peer i's multi-trust reputation view
// of every other peer — without materialising the full power.
func (e *Engine) Reputations(i int, now time.Duration) (map[int]float64, error) {
	if err := e.checkPeer(i); err != nil {
		return nil, err
	}
	tm, err := e.BuildTM(now)
	if err != nil {
		return nil, err
	}
	var sp obs.Span
	if e.obs != nil {
		sp = e.obs.tracer.Start(e.obs.repWalk)
	}
	row, err := tm.RowVecPow(i, e.cfg.Steps)
	sp.End()
	return row, err
}

// ReputationsFromTM is Reputations against a prebuilt TM, letting callers
// amortise matrix construction across many queries.
func (e *Engine) ReputationsFromTM(tm *sparse.CSR, i int) (map[int]float64, error) {
	if err := e.checkPeer(i); err != nil {
		return nil, err
	}
	return tm.RowVecPow(i, e.cfg.Steps)
}

// Compact drops expired evaluations from every store and prunes the
// inverted index; call periodically in long simulations. Compaction is an
// event because it changes state: a journaled engine must replay it at
// the same point in the sequence to reproduce the same matrices.
func (e *Engine) Compact(now time.Duration) {
	_ = e.ApplyEvent(Event{Kind: EventCompact, Time: now})
}

func (e *Engine) compact(now time.Duration) {
	e.compactEvidence(now, nil, e.markDim)
}

// compactEvidence drops expired evaluations of the peers selected by owns
// (nil = all) and prunes their index entries. Removal changes liveness
// for builds at any time (including earlier ones the build-time expiry
// scan will not cover), so every record compaction drops invalidates its
// dependent rows up front, through mark. Restricting by owner makes
// compaction decomposable per shard: a global EventCompact is exactly the
// union of per-shard compactions, in any order, because each peer's
// records and index entries are touched by exactly one owner.
func (e *Engine) compactEvidence(now time.Duration, owns func(p int) bool, mark markFunc) {
	for p, s := range e.stores {
		if owns != nil && !owns(p) {
			continue
		}
		for _, f := range s.ExpiredFiles(now) {
			e.dirtyEvaluationTo(p, f, mark)
		}
	}
	for p, s := range e.stores {
		if owns != nil && !owns(p) {
			continue
		}
		s.Compact(now)
	}
	e.evaluators.prune(owns, func(p int, f eval.FileID) bool {
		_, ok := e.stores[p].Get(f, now)
		return !ok
	})
}

// --- reference (from-scratch) builders --------------------------------------

// The map-backed full rebuilds below are the executable specification the
// incremental CSR pipeline is tested against: incremental_test.go asserts
// the patched matrices match these entry-for-entry, bit for bit. They are
// deliberately kept byte-compatible with the pre-CSR implementation.

// buildFMRef constructs the file-based one-step matrix (Eq. 2–3) from
// scratch. For each pair (i, j) with a non-empty co-evaluated set F of
// size m:
//
//	FT_ij = 1 - (1/m)·Σ_{k∈F} |E_ik − E_jk|
//
// then rows are normalised. Construction walks the inverted file index, so
// cost is Σ_f |evaluators(f)|², the actual co-evaluation mass.
func (e *Engine) buildFMRef(now time.Duration) *sparse.Matrix {
	type pairKey struct{ i, j int }
	sums := make(map[pairKey]float64)
	counts := make(map[pairKey]int)
	// Cache each peer's snapshot once.
	snaps := make([]map[eval.FileID]float64, e.n)
	snap := func(p int) map[eval.FileID]float64 {
		if snaps[p] == nil {
			snaps[p] = e.stores[p].Snapshot(now)
		}
		return snaps[p]
	}
	maxEval := e.cfg.MaxEvaluatorsPerFile
	// Iterate files in sorted order and evaluators in peer order so the
	// floating-point accumulation below is deterministic: a journal replay
	// (internal/journal) must rebuild bit-identical matrices.
	for _, f := range e.evaluators.sortedFiles() {
		// Collect live evaluators of f.
		var live []int
		var vals []float64
		e.evaluators.forEachPeer(f, func(p int) {
			if v, ok := snap(p)[f]; ok {
				live = append(live, p)
				vals = append(vals, v)
			}
		})
		sort.Sort(&evaluatorsByPeer{peers: live, vals: vals})
		if maxEval > 0 && len(live) > maxEval {
			// Deterministic sample: keep a strided subset of the ordered
			// evaluators so the kept set is stable across rebuilds and
			// spans the index range.
			stride := float64(len(live)) / float64(maxEval)
			for k := 0; k < maxEval; k++ {
				i := int(float64(k) * stride)
				live[k], vals[k] = live[i], vals[i]
			}
			live, vals = live[:maxEval], vals[:maxEval]
		}
		for a := 0; a < len(live); a++ {
			for b := a + 1; b < len(live); b++ {
				i, j := live[a], live[b]
				if i > j {
					i, j = j, i
				}
				k := pairKey{i, j}
				sums[k] += math.Abs(vals[a] - vals[b])
				counts[k]++
			}
		}
	}
	fm := sparse.New(e.n)
	for k, c := range counts {
		ft := 1 - sums[k]/float64(c)
		if ft <= 0 {
			continue
		}
		// FT is symmetric; FM is not after row normalisation.
		fm.Set(k.i, k.j, ft)
		fm.Set(k.j, k.i, ft)
	}
	return fm.RowNormalize()
}

// buildDMRef constructs the download-volume matrix (Eq. 4–5) from scratch.
func (e *Engine) buildDMRef(now time.Duration) *sparse.Matrix {
	dm := sparse.New(e.n)
	floor := e.cfg.Retention.Floor
	for i, per := range e.downloads {
		for j, entries := range per {
			vd := 0.0
			for _, d := range entries {
				ev, ok := e.stores[i].Get(d.file, now)
				if !ok {
					ev = floor
				}
				vd += ev * float64(d.size)
			}
			if vd > 0 {
				dm.Set(i, j, vd)
			}
		}
	}
	return dm.RowNormalize()
}

// buildUMRef constructs the user-based matrix (Eq. 6) from scratch.
func (e *Engine) buildUMRef() *sparse.Matrix {
	um := sparse.New(e.n)
	for i, per := range e.userTrust {
		for j, v := range per {
			if v > 0 {
				um.Set(i, j, v)
			}
		}
	}
	return um.RowNormalize()
}

// buildTMRef integrates the reference dimensions from scratch (Eq. 7).
func (e *Engine) buildTMRef(now time.Duration) (*sparse.Matrix, error) {
	tm := sparse.New(e.n)
	if err := tm.AddScaled(e.cfg.Alpha, e.buildFMRef(now)); err != nil {
		return nil, err
	}
	if err := tm.AddScaled(e.cfg.Beta, e.buildDMRef(now)); err != nil {
		return nil, err
	}
	if err := tm.AddScaled(e.cfg.Gamma, e.buildUMRef()); err != nil {
		return nil, err
	}
	return tm, nil
}

// evaluatorsByPeer sorts parallel (peer, value) slices by peer index.
type evaluatorsByPeer struct {
	peers []int
	vals  []float64
}

func (s *evaluatorsByPeer) Len() int           { return len(s.peers) }
func (s *evaluatorsByPeer) Less(i, j int) bool { return s.peers[i] < s.peers[j] }
func (s *evaluatorsByPeer) Swap(i, j int) {
	s.peers[i], s.peers[j] = s.peers[j], s.peers[i]
	s.vals[i], s.vals[j] = s.vals[j], s.vals[i]
}
