package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"mdrep/internal/eval"
	"mdrep/internal/sparse"
)

// Engine is the reputation system state for a population of peers indexed
// [0, n). It ingests the observable behaviour of §3.1 — file evaluations,
// download volumes and user ratings — and produces trust matrices and
// reputations. The Engine is not safe for concurrent use; the simulator
// and DHT layers serialise access.
type Engine struct {
	cfg    Config
	n      int
	stores []*eval.Store
	// downloads[i][j] accumulates the files peer i fetched from peer j
	// (Eq. 4 input). Repeated downloads of the same file count once per
	// occurrence, as in the Maze log.
	downloads []map[int][]downloadEntry
	// userTrust[i][j] is UT_ij (Eq. 6 input).
	userTrust []map[int]float64
	// blacklist[i][j] forces UT_ij to zero regardless of later ratings.
	blacklist []map[int]struct{}
	// evaluators is the inverted index file → peers with a live
	// evaluation; it keeps FM construction proportional to actual
	// co-evaluation instead of O(n²).
	evaluators map[eval.FileID]map[int]struct{}
}

type downloadEntry struct {
	file eval.FileID
	size int64
}

// NewEngine builds an engine for n peers.
func NewEngine(n int, cfg Config) (*Engine, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: population %d, want >= 1", n)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:        cfg,
		n:          n,
		stores:     make([]*eval.Store, n),
		downloads:  make([]map[int][]downloadEntry, n),
		userTrust:  make([]map[int]float64, n),
		blacklist:  make([]map[int]struct{}, n),
		evaluators: make(map[eval.FileID]map[int]struct{}),
	}
	for i := range e.stores {
		s, err := eval.NewStore(cfg.Blend, cfg.Window)
		if err != nil {
			return nil, err
		}
		e.stores[i] = s
	}
	return e, nil
}

// N returns the population size.
func (e *Engine) N() int { return e.n }

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

func (e *Engine) checkPeer(p int) error {
	if p < 0 || p >= e.n {
		return fmt.Errorf("core: peer %d outside [0, %d)", p, e.n)
	}
	return nil
}

func (e *Engine) indexEvaluator(f eval.FileID, p int) {
	m := e.evaluators[f]
	if m == nil {
		m = make(map[int]struct{}, 4)
		e.evaluators[f] = m
	}
	m[p] = struct{}{}
}

// SetImplicit records peer p's implicit (retention-derived) evaluation of
// file f.
func (e *Engine) SetImplicit(p int, f eval.FileID, value float64, now time.Duration) error {
	return e.ApplyEvent(Event{Kind: EventSetImplicit, I: p, File: f, Value: value, Time: now})
}

// ObserveRetention records an implicit evaluation computed from the
// configured retention model.
func (e *Engine) ObserveRetention(p int, f eval.FileID, retention time.Duration, deleted bool, now time.Duration) error {
	return e.SetImplicit(p, f, e.cfg.Retention.Implicit(retention, deleted), now)
}

// Vote records peer p's explicit evaluation of file f.
func (e *Engine) Vote(p int, f eval.FileID, value float64, now time.Duration) error {
	return e.ApplyEvent(Event{Kind: EventVote, I: p, File: f, Value: value, Time: now})
}

// Evaluation returns peer p's blended evaluation of f, if live.
func (e *Engine) Evaluation(p int, f eval.FileID, now time.Duration) (float64, bool) {
	if e.checkPeer(p) != nil {
		return 0, false
	}
	return e.stores[p].Get(f, now)
}

// RecordDownload registers that downloader fetched file f (size bytes)
// from uploader; it feeds VD of Eq. (4). The evaluation weight E_ik is
// resolved lazily when DM is built, so a later vote or retention update
// retroactively re-weights the volume — sharing a file the downloader
// ends up judging fake earns no download-volume trust.
func (e *Engine) RecordDownload(downloader, uploader int, f eval.FileID, size int64, now time.Duration) error {
	return e.ApplyEvent(Event{Kind: EventDownload, I: downloader, J: uploader, File: f, Size: size, Time: now})
}

// RateUser records UT_ij = value (Eq. 6). Blacklisted targets stay at
// zero.
func (e *Engine) RateUser(i, j int, value float64) error {
	return e.ApplyEvent(Event{Kind: EventRateUser, I: i, J: j, Value: value})
}

// AddFriend assigns the configured friend-list trust to j (§3.1.3).
func (e *Engine) AddFriend(i, j int) error {
	return e.RateUser(i, j, e.cfg.FriendTrust)
}

// Blacklist sets UT_ij to zero permanently for i's view of j (§3.1.3:
// "the users in the blacklist … should be assigned with zero").
func (e *Engine) Blacklist(i, j int) error {
	return e.ApplyEvent(Event{Kind: EventBlacklist, I: i, J: j})
}

// BuildFM constructs the file-based one-step matrix (Eq. 2–3) from live
// evaluations at time now. For each pair (i, j) with a non-empty
// co-evaluated set F of size m:
//
//	FT_ij = 1 - (1/m)·Σ_{k∈F} |E_ik − E_jk|
//
// then rows are normalised. Construction walks the inverted file index, so
// cost is Σ_f |evaluators(f)|², the actual co-evaluation mass.
func (e *Engine) BuildFM(now time.Duration) *sparse.Matrix {
	type pairKey struct{ i, j int }
	sums := make(map[pairKey]float64)
	counts := make(map[pairKey]int)
	// Cache each peer's snapshot once.
	snaps := make([]map[eval.FileID]float64, e.n)
	snap := func(p int) map[eval.FileID]float64 {
		if snaps[p] == nil {
			snaps[p] = e.stores[p].Snapshot(now)
		}
		return snaps[p]
	}
	maxEval := e.cfg.MaxEvaluatorsPerFile
	// Iterate files in sorted order and evaluators in peer order so the
	// floating-point accumulation below is deterministic: a journal replay
	// (internal/journal) must rebuild bit-identical matrices.
	files := make([]string, 0, len(e.evaluators))
	for f := range e.evaluators {
		files = append(files, string(f))
	}
	sort.Strings(files)
	for _, fs := range files {
		f := eval.FileID(fs)
		peers := e.evaluators[f]
		// Collect live evaluators of f.
		live := make([]int, 0, len(peers))
		vals := make([]float64, 0, len(peers))
		for p := range peers {
			if v, ok := snap(p)[f]; ok {
				live = append(live, p)
				vals = append(vals, v)
			}
		}
		sort.Sort(&evaluatorsByPeer{peers: live, vals: vals})
		if maxEval > 0 && len(live) > maxEval {
			// Deterministic sample: keep a strided subset of the ordered
			// evaluators so the kept set is stable across rebuilds and
			// spans the index range.
			stride := float64(len(live)) / float64(maxEval)
			for k := 0; k < maxEval; k++ {
				i := int(float64(k) * stride)
				live[k], vals[k] = live[i], vals[i]
			}
			live, vals = live[:maxEval], vals[:maxEval]
		}
		for a := 0; a < len(live); a++ {
			for b := a + 1; b < len(live); b++ {
				i, j := live[a], live[b]
				if i > j {
					i, j = j, i
				}
				k := pairKey{i, j}
				sums[k] += math.Abs(vals[a] - vals[b])
				counts[k]++
			}
		}
	}
	fm := sparse.New(e.n)
	for k, c := range counts {
		ft := 1 - sums[k]/float64(c)
		if ft <= 0 {
			continue
		}
		// FT is symmetric; FM is not after row normalisation.
		fm.Set(k.i, k.j, ft)
		fm.Set(k.j, k.i, ft)
	}
	return fm.RowNormalize()
}

// BuildDM constructs the download-volume matrix (Eq. 4–5) at time now:
// VD_ij = Σ_{k ∈ D_ij} E_ik·S_k, rows normalised. Files the downloader
// never evaluated contribute the retention-model floor — a just-finished
// download is weak but real evidence the uploader served something.
func (e *Engine) BuildDM(now time.Duration) *sparse.Matrix {
	dm := sparse.New(e.n)
	floor := e.cfg.Retention.Floor
	for i, per := range e.downloads {
		for j, entries := range per {
			vd := 0.0
			for _, d := range entries {
				ev, ok := e.stores[i].Get(d.file, now)
				if !ok {
					ev = floor
				}
				vd += ev * float64(d.size)
			}
			if vd > 0 {
				dm.Set(i, j, vd)
			}
		}
	}
	return dm.RowNormalize()
}

// BuildUM constructs the user-based matrix (Eq. 6) from explicit ratings.
func (e *Engine) BuildUM() *sparse.Matrix {
	um := sparse.New(e.n)
	for i, per := range e.userTrust {
		for j, v := range per {
			if v > 0 {
				um.Set(i, j, v)
			}
		}
	}
	return um.RowNormalize()
}

// BuildTM integrates the three dimensions into the one-step direct trust
// matrix of Eq. (7). Rows of TM are sub-stochastic when a peer lacks one
// of the dimensions; that is intentional — missing evidence must not be
// re-weighted into false confidence.
func (e *Engine) BuildTM(now time.Duration) (*sparse.Matrix, error) {
	tm := sparse.New(e.n)
	if err := tm.AddScaled(e.cfg.Alpha, e.BuildFM(now)); err != nil {
		return nil, err
	}
	if err := tm.AddScaled(e.cfg.Beta, e.BuildDM(now)); err != nil {
		return nil, err
	}
	if err := tm.AddScaled(e.cfg.Gamma, e.BuildUM()); err != nil {
		return nil, err
	}
	return tm, nil
}

// BuildRM computes the full reputation matrix RM = TM^n (Eq. 8).
func (e *Engine) BuildRM(now time.Duration) (*sparse.Matrix, error) {
	tm, err := e.BuildTM(now)
	if err != nil {
		return nil, err
	}
	return tm.Pow(e.cfg.Steps)
}

// Reputations returns row i of RM — peer i's multi-trust reputation view
// of every other peer — without materialising the full power.
func (e *Engine) Reputations(i int, now time.Duration) (map[int]float64, error) {
	if err := e.checkPeer(i); err != nil {
		return nil, err
	}
	tm, err := e.BuildTM(now)
	if err != nil {
		return nil, err
	}
	return tm.RowVecPow(i, e.cfg.Steps)
}

// ReputationsFromTM is Reputations against a prebuilt TM, letting callers
// amortise matrix construction across many queries.
func (e *Engine) ReputationsFromTM(tm *sparse.Matrix, i int) (map[int]float64, error) {
	if err := e.checkPeer(i); err != nil {
		return nil, err
	}
	return tm.RowVecPow(i, e.cfg.Steps)
}

// Compact drops expired evaluations from every store and prunes the
// inverted index; call periodically in long simulations. Compaction is an
// event because it changes state: a journaled engine must replay it at
// the same point in the sequence to reproduce the same matrices.
func (e *Engine) Compact(now time.Duration) {
	_ = e.ApplyEvent(Event{Kind: EventCompact, Time: now})
}

func (e *Engine) compact(now time.Duration) {
	for _, s := range e.stores {
		s.Compact(now)
	}
	for f, peers := range e.evaluators {
		for p := range peers {
			if _, ok := e.stores[p].Get(f, now); !ok {
				delete(peers, p)
			}
		}
		if len(peers) == 0 {
			delete(e.evaluators, f)
		}
	}
}

// evaluatorsByPeer sorts parallel (peer, value) slices by peer index.
type evaluatorsByPeer struct {
	peers []int
	vals  []float64
}

func (s *evaluatorsByPeer) Len() int           { return len(s.peers) }
func (s *evaluatorsByPeer) Less(i, j int) bool { return s.peers[i] < s.peers[j] }
func (s *evaluatorsByPeer) Swap(i, j int) {
	s.peers[i], s.peers[j] = s.peers[j], s.peers[i]
	s.vals[i], s.vals[j] = s.vals[j], s.vals[i]
}
