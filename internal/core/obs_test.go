package core

import (
	"testing"
	"time"

	"mdrep/internal/metrics"
)

func TestEngineObserverCounts(t *testing.T) {
	reg := metrics.NewRegistry()
	now := time.Unix(0, 0)
	o := NewEngineObs(reg, func() time.Time {
		now = now.Add(time.Microsecond)
		return now
	})
	eng, err := NewEngine(4, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng.SetObserver(o)

	if err := eng.Vote(0, "f1", 0.9, 0); err != nil {
		t.Fatal(err)
	}
	if err := eng.Vote(1, "f1", 0.8, 0); err != nil {
		t.Fatal(err)
	}
	if err := eng.RecordDownload(0, 1, "f1", 100, 0); err != nil {
		t.Fatal(err)
	}
	if err := eng.RateUser(0, 1, 0.7); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.BuildTM(0); err != nil {
		t.Fatal(err)
	}

	// First build recomputes all n rows of each dimension.
	for _, dim := range []string{"fm", "dm", "um"} {
		if got := reg.Counter("engine_dirty_rows_total", "dim", dim).Load(); got != 4 {
			t.Errorf("dirty rows %s = %d, want 4", dim, got)
		}
		if got := reg.Histogram("engine_build_seconds", metrics.DurationBuckets, "dim", dim).Count(); got != 1 {
			t.Errorf("build spans %s = %d, want 1", dim, got)
		}
	}
	if got := reg.Counter("engine_tm_refreeze_total").Load(); got != eng.Epoch() {
		t.Errorf("refreeze count %d != epoch %d", got, eng.Epoch())
	}

	// An incremental patch recomputes only the dirtied rows.
	if err := eng.RateUser(2, 3, 0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.BuildTM(0); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("engine_dirty_rows_total", "dim", "um").Load(); got != 5 {
		t.Errorf("um dirty rows after patch = %d, want 4+1", got)
	}

	if _, err := eng.Reputations(0, 0); err != nil {
		t.Fatal(err)
	}
	if got := reg.Histogram("engine_reputation_walk_seconds", metrics.DurationBuckets).Count(); got != 1 {
		t.Errorf("reputation walk spans = %d, want 1", got)
	}
	if _, err := eng.BuildRM(0); err != nil {
		t.Fatal(err)
	}
	if got := reg.Histogram("engine_build_seconds", metrics.DurationBuckets, "dim", "rm").Count(); got != 1 {
		t.Errorf("rm build spans = %d, want 1", got)
	}
}

func TestConcurrentObserverSurvivesSwap(t *testing.T) {
	reg := metrics.NewRegistry()
	o := NewEngineObs(reg, nil) // counters only; no clock needed
	c, err := NewConcurrentEngine(3, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c.SetObserver(o)

	replacement, err := NewEngine(3, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c.Swap(replacement)
	if err := c.Vote(0, "f", 1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.TM(0); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("engine_dirty_rows_total", "dim", "fm").Load(); got == 0 {
		t.Error("observer lost across Swap: no dirty rows recorded")
	}
}
