package core

import (
	"mdrep/internal/metrics"
	"mdrep/internal/obs"
)

// EngineObs is the engine's metrics surface: per-dimension build
// latency and dirty-row volume, TM re-freeze (epoch bump) latency, and
// reputation power-walk timing. An engine with a nil observer pays one
// nil check per build call. The observer carries no engine state, so
// attaching or detaching it cannot perturb replay determinism — the
// clock is only ever read around builds, never fed into them.
type EngineObs struct {
	tracer *obs.Tracer

	buildFM *metrics.Histogram // engine_build_seconds{dim=...}
	buildDM *metrics.Histogram
	buildUM *metrics.Histogram
	buildRM *metrics.Histogram
	repWalk *metrics.Histogram // Reputations row-walk latency

	refreeze  *metrics.Histogram // TM integration (WeightedSum) latency
	refreezes *metrics.Counter   // epoch bumps

	dirtyFM *metrics.Counter // engine_dirty_rows_total{dim=...}
	dirtyDM *metrics.Counter
	dirtyUM *metrics.Counter
}

// NewEngineObs registers the engine metric families in reg and returns
// an observer timed by clock. A nil registry returns a nil (disabled)
// observer; a nil clock keeps the counters but disables the latency
// spans, which is what deterministic simulations want.
func NewEngineObs(reg *metrics.Registry, clock obs.Clock) *EngineObs {
	if reg == nil {
		return nil
	}
	return &EngineObs{
		tracer:    obs.NewTracer(clock),
		buildFM:   reg.Histogram("engine_build_seconds", metrics.DurationBuckets, "dim", "fm"),
		buildDM:   reg.Histogram("engine_build_seconds", metrics.DurationBuckets, "dim", "dm"),
		buildUM:   reg.Histogram("engine_build_seconds", metrics.DurationBuckets, "dim", "um"),
		buildRM:   reg.Histogram("engine_build_seconds", metrics.DurationBuckets, "dim", "rm"),
		repWalk:   reg.Histogram("engine_reputation_walk_seconds", metrics.DurationBuckets),
		refreeze:  reg.Histogram("engine_tm_refreeze_seconds", metrics.DurationBuckets),
		refreezes: reg.Counter("engine_tm_refreeze_total"),
		dirtyFM:   reg.Counter("engine_dirty_rows_total", "dim", "fm"),
		dirtyDM:   reg.Counter("engine_dirty_rows_total", "dim", "dm"),
		dirtyUM:   reg.Counter("engine_dirty_rows_total", "dim", "um"),
	}
}

// spanRepWalk starts a reputation-walk span; nil-safe so lock-free query
// paths can call it unconditionally.
func (o *EngineObs) spanRepWalk() obs.Span {
	if o == nil {
		return obs.Span{}
	}
	return o.tracer.Start(o.repWalk)
}

// SetObserver attaches (or, with nil, detaches) the metrics observer.
// Not safe for concurrent use with builds — attach at construction, or
// through Concurrent.SetObserver.
func (e *Engine) SetObserver(o *EngineObs) { e.obs = o }

// dirtyCount is the number of rows the next refresh of d will recompute.
func (e *Engine) dirtyCount(d *dimCache) uint64 {
	if d.all || d.rows == nil {
		return uint64(e.n)
	}
	return uint64(len(d.dirty))
}
