package core

import (
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"mdrep/internal/eval"
)

// TestShardedMillionPeerBuild is the memory acceptance experiment for
// the sharded engine: build a 1M-peer, 8-shard engine, ingest a sparse
// evidence load through group-commit batches, rebuild TM once, and
// report heap. Gated behind MDREP_HEAVY=1 — it allocates hundreds of MB
// and runs for minutes, so it stays out of tier-1; EXPERIMENTS.md
// records the measured numbers.
func TestShardedMillionPeerBuild(t *testing.T) {
	if os.Getenv("MDREP_HEAVY") != "1" {
		t.Skip("set MDREP_HEAVY=1 to run the 1M-peer memory experiment")
	}
	const n, k, rows = 1_000_000, 8, 200_000
	s, err := NewSharded(n, k, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// ~5 evidence entries per active peer over a fifth of the population:
	// the sparse regime the paper's population operates in.
	batch := make([]Event, 0, 4096)
	flush := func() {
		if len(batch) == 0 {
			return
		}
		if err := s.ApplyBatch(batch); err != nil {
			t.Fatal(err)
		}
		batch = batch[:0]
	}
	start := time.Now()
	events := 0
	for i := 0; i < rows; i++ {
		p := (i * 5) % n
		f := eval.FileID(fmt.Sprintf("f-%d", i%4096))
		now := time.Duration(i) * time.Millisecond
		batch = append(batch,
			Event{Kind: EventVote, I: p, File: f, Value: 0.9, Time: now},
			Event{Kind: EventDownload, I: p, J: (p + 1) % n, File: f, Size: 1 << 20, Time: now},
			Event{Kind: EventRateUser, I: p, J: (p + 7) % n, Value: 0.8},
		)
		events += 3
		if len(batch) >= 4096-3 {
			flush()
		}
	}
	flush()
	ingest := time.Since(start)

	start = time.Now()
	tm, err := s.TM(time.Duration(rows) * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	build := time.Since(start)

	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	t.Logf("n=%d k=%d: %d events ingested in %v (%.0f ev/s), TM build %v, TM nnz %d, heap %.1f MB",
		n, k, events, ingest, float64(events)/ingest.Seconds(), build, tm.NNZ(),
		float64(ms.HeapAlloc)/(1<<20))
	if tm.NNZ() == 0 {
		t.Fatal("million-peer TM is empty")
	}
}
