package core

import (
	"errors"
	"fmt"
	"time"

	"mdrep/internal/trace"
)

// CoverageConfig parameterises the Figure 1 request-coverage experiment
// (§3.2). A download request u→d is *covered* when, at request time, the
// uploader and the downloader have at least one co-evaluated file — the
// condition under which a file-based direct trust edge exists between
// them.
type CoverageConfig struct {
	// VoteFraction is k/100: the probability that a peer explicitly
	// evaluates a file it owns. 1.0 models implicit evaluation, where
	// "users will evaluate 100% of the files they have".
	VoteFraction float64
	// Window expires evaluations after the given interval (§4.3); zero
	// disables expiry.
	Window time.Duration
	// Buckets is the number of time buckets in the output series.
	Buckets int
	// Seed drives the per-(peer,file) vote decision.
	Seed uint64
	// WithDownloadEdges additionally counts a request as covered when the
	// downloader previously downloaded from the uploader (a DM edge) —
	// the "download volume … can also increase request coverage" remark.
	WithDownloadEdges bool
	// WithUserEdges additionally counts UM edges; modelled as covered
	// when the two peers interacted at least UserEdgeThreshold times
	// (repeat interaction is the paper's proxy for explicit ratings).
	WithUserEdges bool
	// UserEdgeThreshold is the repeat-interaction count treated as a
	// user-rating edge; default 3.
	UserEdgeThreshold int
}

// Validate checks the configuration.
func (c CoverageConfig) Validate() error {
	if c.VoteFraction < 0 || c.VoteFraction > 1 {
		return errors.New("core: vote fraction outside [0,1]")
	}
	if c.Window < 0 {
		return errors.New("core: negative window")
	}
	if c.Buckets < 1 {
		return errors.New("core: need at least 1 bucket")
	}
	if c.WithUserEdges && c.UserEdgeThreshold < 1 {
		return errors.New("core: user edge threshold must be >= 1")
	}
	return nil
}

// CoveragePoint is one bucket of the coverage time series.
type CoveragePoint struct {
	// Time is the bucket's end time.
	Time time.Duration
	// Requests is the number of download requests in the bucket.
	Requests int
	// Covered is how many of them had a direct trust edge.
	Covered int
}

// Fraction returns Covered/Requests (zero for an empty bucket).
func (p CoveragePoint) Fraction() float64 {
	if p.Requests == 0 {
		return 0
	}
	return float64(p.Covered) / float64(p.Requests)
}

// CoverageResult is the outcome of a coverage run.
type CoverageResult struct {
	Config CoverageConfig
	Series []CoveragePoint
	// Total aggregates the whole run.
	Total CoveragePoint
}

// OverallFraction returns the run-wide covered fraction.
func (r CoverageResult) OverallFraction() float64 { return r.Total.Fraction() }

// SteadyStateFraction returns the covered fraction over the second half of
// the series, past the cold-start ramp; this is the number compared with
// the paper's Figure 1 plateau.
func (r CoverageResult) SteadyStateFraction() float64 {
	half := r.Series[len(r.Series)/2:]
	var p CoveragePoint
	for _, b := range half {
		p.Requests += b.Requests
		p.Covered += b.Covered
	}
	return p.Fraction()
}

// voteDecision deterministically decides whether peer p evaluates file f,
// with probability fraction, independent of event order. A cheap 64-bit
// mix of (seed, p, f) stands in for per-peer sampling.
func voteDecision(seed uint64, p, f int, fraction float64) bool {
	if fraction >= 1 {
		return true
	}
	if fraction <= 0 {
		return false
	}
	z := seed ^ uint64(p)*0x9e3779b97f4a7c15 ^ uint64(f)*0xc2b2ae3d27d4eb4f
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11)/(1<<53) < fraction
}

// MeasureCoverage replays the trace and reports request coverage over
// time, reproducing Figure 1. Ownership semantics follow the paper's
// replay: serving a file proves the uploader owns it, finishing a download
// makes the downloader own it; a peer evaluates an owned file with
// probability VoteFraction, and evaluations expire after Window.
func MeasureCoverage(tr *trace.Trace, cfg CoverageConfig) (*CoverageResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	duration := tr.Duration()
	if duration <= 0 {
		return nil, fmt.Errorf("core: trace has no time extent")
	}
	bucketLen := duration / time.Duration(cfg.Buckets)
	if bucketLen <= 0 {
		bucketLen = 1
	}

	// evaluated[p] maps file → last-touch time for peer p's evaluated
	// files.
	evaluated := make([]map[int]time.Duration, tr.Peers)
	touch := func(p, f int, now time.Duration) {
		if !voteDecision(cfg.Seed, p, f, cfg.VoteFraction) {
			return
		}
		m := evaluated[p]
		if m == nil {
			m = make(map[int]time.Duration, 8)
			evaluated[p] = m
		}
		m[f] = now
	}
	live := func(p, f int, now time.Duration) bool {
		at, ok := evaluated[p][f]
		if !ok {
			return false
		}
		if cfg.Window > 0 && now-at > cfg.Window {
			delete(evaluated[p], f)
			return false
		}
		return true
	}
	covered := func(u, d int, now time.Duration) bool {
		a, b := evaluated[u], evaluated[d]
		if len(a) > len(b) {
			a, b, u, d = b, a, d, u
		}
		owner := u
		for f := range a {
			if !live(owner, f, now) {
				continue
			}
			if live(d, f, now) {
				return true
			}
		}
		return false
	}

	// Pairwise interaction counts for the DM/UM edge extensions, stored
	// sparsely keyed on (min, max).
	var interactions map[[2]int32]int32
	if cfg.WithDownloadEdges || cfg.WithUserEdges {
		interactions = make(map[[2]int32]int32)
	}
	pairKey := func(u, d int) [2]int32 {
		if u > d {
			u, d = d, u
		}
		return [2]int32{int32(u), int32(d)}
	}
	threshold := int32(cfg.UserEdgeThreshold)
	if threshold < 1 {
		threshold = 3
	}

	res := &CoverageResult{Config: cfg, Series: make([]CoveragePoint, cfg.Buckets)}
	for b := range res.Series {
		res.Series[b].Time = bucketLen * time.Duration(b+1)
	}
	for _, rec := range tr.Records {
		b := int(rec.Time / bucketLen)
		if b >= cfg.Buckets {
			b = cfg.Buckets - 1
		}
		isCovered := covered(rec.Uploader, rec.Downloader, rec.Time)
		if !isCovered && interactions != nil {
			n := interactions[pairKey(rec.Uploader, rec.Downloader)]
			if cfg.WithDownloadEdges && n >= 1 {
				isCovered = true
			}
			if cfg.WithUserEdges && n >= threshold {
				isCovered = true
			}
		}
		res.Series[b].Requests++
		res.Total.Requests++
		if isCovered {
			res.Series[b].Covered++
			res.Total.Covered++
		}
		// State updates happen after the coverage check: the request is
		// judged on history only.
		touch(rec.Uploader, rec.File, rec.Time)
		touch(rec.Downloader, rec.File, rec.Time)
		if interactions != nil {
			interactions[pairKey(rec.Uploader, rec.Downloader)]++
		}
	}
	res.Total.Time = duration
	return res, nil
}
