package core

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"mdrep/internal/eval"
)

// scriptEvents generates a deterministic, seeded event log covering
// every event kind (including mid-stream compactions) for n peers over
// rounds virtual hours.
func scriptEvents(n, rounds int, seed int64) []Event {
	rng := rand.New(rand.NewSource(seed))
	files := make([]string, 12)
	for i := range files {
		files[i] = fmt.Sprintf("file-%02d", i)
	}
	var evs []Event
	for r := 0; r < rounds; r++ {
		now := time.Duration(r) * time.Hour
		for step := 0; step < 3*n; step++ {
			i := rng.Intn(n)
			j := rng.Intn(n)
			f := files[rng.Intn(len(files))]
			switch rng.Intn(6) {
			case 0:
				evs = append(evs, Event{Kind: EventVote, I: i, File: eval.FileID(f), Value: rng.Float64(), Time: now})
			case 1:
				evs = append(evs, Event{Kind: EventSetImplicit, I: i, File: eval.FileID(f), Value: rng.Float64(), Time: now})
			case 2:
				if i != j {
					evs = append(evs, Event{Kind: EventDownload, I: i, J: j, File: eval.FileID(f), Size: int64(rng.Intn(1 << 20)), Time: now})
				}
			case 3:
				if i != j {
					evs = append(evs, Event{Kind: EventRateUser, I: i, J: j, Value: rng.Float64()})
				}
			case 4:
				if rng.Intn(8) == 0 {
					evs = append(evs, Event{Kind: EventBlacklist, I: i, J: j})
				}
			case 5:
				if rng.Intn(3*n) == 0 {
					evs = append(evs, Event{Kind: EventCompact, Time: now})
				}
			}
		}
	}
	return evs
}

func marshalState(t *testing.T, st *EngineState) []byte {
	t.Helper()
	b, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func csrBytes(t *testing.T, c interface {
	N() int
	Row(i int) ([]int32, []float64)
}) string {
	t.Helper()
	b, err := json.Marshal(struct {
		Cols [][]int32
		Vals [][]float64
	}{
		Cols: func() [][]int32 {
			out := make([][]int32, c.N())
			for i := range out {
				out[i], _ = c.Row(i)
			}
			return out
		}(),
		Vals: func() [][]float64 {
			out := make([][]float64, c.N())
			for i := range out {
				_, out[i] = c.Row(i)
			}
			return out
		}(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestShardCountInvariance is the acceptance property of the sharded
// refactor: an identical event log applied through K ∈ {1, 2, 8} shards
// (mixing per-event and batched group-commit ingest) produces
// field-for-field, bit-identical ExportState and byte-identical frozen
// TM versus the unsharded seed Engine.
func TestShardCountInvariance(t *testing.T) {
	const n = 40
	cfg := DefaultConfig()
	cfg.Window = 3 * time.Hour
	evs := scriptEvents(n, 6, 42)
	final := 6 * time.Hour

	seed := mustEngine(t, n, cfg)
	for _, ev := range evs {
		if err := seed.ApplyEvent(ev); err != nil {
			t.Fatal(err)
		}
	}
	wantState := marshalState(t, seed.ExportState())
	wantTM, err := seed.BuildTM(final)
	if err != nil {
		t.Fatal(err)
	}
	wantTMBytes := csrBytes(t, wantTM)
	wantRep, err := seed.Reputations(0, final)
	if err != nil {
		t.Fatal(err)
	}

	for _, k := range []int{1, 2, 8} {
		for _, batched := range []bool{false, true} {
			name := fmt.Sprintf("k=%d/batched=%v", k, batched)
			s, err := NewSharded(n, k, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if batched {
				// Group-commit in chunks, interleaved with reads so
				// incremental dirty tracking is exercised, not just one
				// cold build.
				for off := 0; off < len(evs); off += 64 {
					end := off + 64
					if end > len(evs) {
						end = len(evs)
					}
					if err := s.ApplyBatch(evs[off:end]); err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					if off%(64*5) == 0 {
						if _, err := s.TM(evs[off].Time); err != nil {
							t.Fatalf("%s: %v", name, err)
						}
					}
				}
			} else {
				for _, ev := range evs {
					if err := s.ApplyEvent(ev); err != nil {
						t.Fatalf("%s: %v", name, err)
					}
				}
			}
			if got := marshalState(t, s.ExportState()); string(got) != string(wantState) {
				t.Fatalf("%s: ExportState differs from unsharded engine", name)
			}
			tm, err := s.TM(final)
			if err != nil {
				t.Fatal(err)
			}
			if got := csrBytes(t, tm); got != wantTMBytes {
				t.Fatalf("%s: frozen TM differs from unsharded engine", name)
			}
			rep, err := s.Reputations(0, final)
			if err != nil {
				t.Fatal(err)
			}
			if len(rep) != len(wantRep) {
				t.Fatalf("%s: reputation row size %d, want %d", name, len(rep), len(wantRep))
			}
			for j, v := range wantRep {
				if rep[j] != v {
					t.Fatalf("%s: reputation[%d] = %v, want bit-identical %v", name, j, rep[j], v)
				}
			}
		}
	}
}

// TestShardedIncrementalMatchesRebuild interleaves events, time
// advancement, expiry and compaction with TM builds, checking each
// incremental sharded build against a from-scratch sharded engine fed
// the same prefix — the sharded analogue of incremental_test.go.
func TestShardedIncrementalMatchesRebuild(t *testing.T) {
	const n = 24
	cfg := DefaultConfig()
	cfg.Window = 2 * time.Hour
	evs := scriptEvents(n, 8, 7)
	s, err := NewSharded(n, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for idx, ev := range evs {
		if err := s.ApplyEvent(ev); err != nil {
			t.Fatal(err)
		}
		if idx%97 != 0 {
			continue
		}
		now := ev.Time + time.Duration(idx%3)*time.Hour
		got, err := s.TM(now)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := NewSharded(n, 4, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.ApplyBatch(evs[:idx+1]); err != nil {
			t.Fatal(err)
		}
		want, err := fresh.TM(now)
		if err != nil {
			t.Fatal(err)
		}
		if csrBytes(t, got) != csrBytes(t, want) {
			t.Fatalf("incremental TM diverged from fresh build at event %d", idx)
		}
	}
}

// TestShardedApplyBatchContract checks the sharded facade inherits the
// all-or-report batch contract.
func TestShardedApplyBatchContract(t *testing.T) {
	s, err := NewSharded(8, 4, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	bad := []Event{
		{Kind: EventRateUser, I: 0, J: 1, Value: 0.5},
		{Kind: EventDownload, I: 3, J: 3, File: "f"}, // self-download
	}
	err = s.ApplyBatch(bad)
	be, ok := err.(*BatchError)
	if !ok || be.Index != 1 {
		t.Fatalf("err = %v, want BatchError at index 1", err)
	}
	st := s.ExportState()
	for i, ut := range st.UserTrust {
		if len(ut) != 0 {
			t.Fatalf("peer %d mutated by failed batch", i)
		}
	}
}

// TestShardedValidation covers the facade's own error paths.
func TestShardedValidation(t *testing.T) {
	if _, err := NewSharded(4, 0, DefaultConfig()); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := NewSharded(4, MaxShards+1, DefaultConfig()); err == nil {
		t.Fatal("k>MaxShards accepted")
	}
	s, err := NewSharded(8, 2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ApplyEvent(Event{Kind: EventVote, I: 99, File: "f"}); err == nil {
		t.Fatal("out-of-range peer accepted")
	}
	wrong := 1 - s.ShardOf(0)
	if err := s.ApplyShard(wrong, Event{Kind: EventVote, I: 0, File: "f"}); err == nil {
		t.Fatal("event replayed into the wrong shard accepted")
	}
	if err := s.ApplyShard(5, Event{Kind: EventVote, I: 0, File: "f"}); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
}

// TestShardedHammer drives a K=8 sharded engine with racing single
// events, batches, compactions and reads; run under -race it is the
// concurrency proof of the lock ordering in the type comment.
func TestShardedHammer(t *testing.T) {
	const n = 32
	cfg := DefaultConfig()
	cfg.Window = time.Hour
	s, err := NewSharded(n, 8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			evs := scriptEvents(n, 3, int64(100+w))
			for off := 0; off < len(evs); off += 16 {
				end := off + 16
				if end > len(evs) {
					end = len(evs)
				}
				if err := s.ApplyBatch(evs[off:end]); err != nil {
					panic(err)
				}
			}
		}(w)
	}
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < 40; r++ {
				now := time.Duration(r%4) * time.Hour
				if _, err := s.Reputations(r%n, now); err != nil {
					panic(err)
				}
				if _, ok := s.Evaluation(r%n, "file-00", now); ok {
					_ = ok
				}
				_ = s.CollectOwnerEvaluations("file-01", []int{0, 5, 9}, now)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < 5; r++ {
			s.Compact(time.Duration(r) * time.Hour)
			_ = s.ExportState()
		}
	}()
	wg.Wait()
	if _, err := s.TM(4 * time.Hour); err != nil {
		t.Fatal(err)
	}
}

// TestShardSnapshotRoundTrip exports every shard, restores each into a
// fresh sharded engine (in reverse order, proving order independence)
// and checks bit-identical state and TM.
func TestShardSnapshotRoundTrip(t *testing.T) {
	const n, k = 30, 4
	cfg := DefaultConfig()
	cfg.Window = 3 * time.Hour
	s, err := NewSharded(n, k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ApplyBatch(scriptEvents(n, 5, 11)); err != nil {
		t.Fatal(err)
	}
	want := marshalState(t, s.ExportState())

	fresh, err := NewSharded(n, k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for si := k - 1; si >= 0; si-- {
		st, err := s.ExportShardState(si)
		if err != nil {
			t.Fatal(err)
		}
		// Round-trip through JSON, as the journal snapshot path does.
		b, err := json.Marshal(st)
		if err != nil {
			t.Fatal(err)
		}
		var back ShardState
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		if err := fresh.RestoreShard(si, &back); err != nil {
			t.Fatal(err)
		}
	}
	if got := marshalState(t, fresh.ExportState()); string(got) != string(want) {
		t.Fatal("restored state differs from exported state")
	}
	now := 5 * time.Hour
	a, err := s.TM(now)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fresh.TM(now)
	if err != nil {
		t.Fatal(err)
	}
	if csrBytes(t, a) != csrBytes(t, b) {
		t.Fatal("restored TM differs")
	}

	// Restore guards: wrong shard index and unowned peers are rejected.
	st, err := s.ExportShardState(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.RestoreShard(1, st); err == nil {
		t.Fatal("snapshot restored into the wrong shard")
	}
}

// TestShardIndexStability pins the router: the owner of a peer must
// never change across releases, or per-shard journals become
// unreadable.
func TestShardIndexStability(t *testing.T) {
	want := map[[2]int]int{
		{0, 8}:      ShardIndex(0, 8),
		{1, 8}:      ShardIndex(1, 8),
		{999999, 8}: ShardIndex(999999, 8),
	}
	for in, out := range want {
		if out < 0 || out >= in[1] {
			t.Fatalf("ShardIndex(%d, %d) = %d out of range", in[0], in[1], out)
		}
	}
	// Distribution sanity: no shard owns more than twice its fair share
	// at n=10000, k=8.
	counts := make([]int, 8)
	for p := 0; p < 10000; p++ {
		counts[ShardIndex(p, 8)]++
	}
	for si, c := range counts {
		if c > 2*10000/8 || c < 10000/8/2 {
			t.Fatalf("shard %d owns %d of 10000 peers — hash is striping", si, c)
		}
	}
}
