package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"mdrep/internal/eval"
	"mdrep/internal/sim"
)

// TestConcurrentHammer drives a Concurrent engine with racing mutators and
// readers. Run under -race (CI does) this is the proof of the concurrency
// contract: events serialise behind the write lock while reputation
// queries, file judgements and exports proceed against frozen snapshots.
func TestConcurrentHammer(t *testing.T) {
	const n = 24
	cfg := DefaultConfig()
	cfg.Window = time.Hour
	c, err := NewConcurrentEngine(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	report := func(err error) {
		if err != nil {
			select {
			case errs <- err:
			default:
			}
		}
	}

	// Writers: interleaved votes, downloads, ratings, compactions.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := sim.NewRNG(uint64(1000 + w))
			for k := 0; k < 300; k++ {
				i, j := r.Intn(n), r.Intn(n)
				fid := eval.FileID(fmt.Sprintf("f%d", r.Intn(10)))
				now := time.Duration(k) * time.Second
				switch k % 5 {
				case 0:
					report(c.Vote(i, fid, r.Float64(), now))
				case 1:
					report(c.SetImplicit(i, fid, r.Float64(), now))
				case 2:
					if i != j {
						report(c.RecordDownload(i, j, fid, 1<<10, now))
					}
				case 3:
					if i != j {
						report(c.RateUser(i, j, r.Float64()))
					}
				case 4:
					c.Compact(now)
				}
			}
		}(w)
	}

	// Readers: reputation queries, TM fetches, judgements, exports.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := sim.NewRNG(uint64(2000 + w))
			for k := 0; k < 300; k++ {
				now := time.Duration(r.Intn(300)) * time.Second
				switch k % 4 {
				case 0:
					_, err := c.Reputations(r.Intn(n), now)
					report(err)
				case 1:
					tm, err := c.TM(now)
					report(err)
					if tm != nil {
						_, err = c.ReputationsFromTM(tm, r.Intn(n))
						report(err)
					}
				case 2:
					owners := c.CollectOwnerEvaluations(eval.FileID(fmt.Sprintf("f%d", r.Intn(10))), []int{0, 1, 2, 3}, now)
					_, err := c.JudgeFile(r.Intn(n), owners, now)
					report(err)
				case 3:
					if st := c.ExportState(); st.N != n {
						report(fmt.Errorf("export saw population %d", st.N))
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConcurrentMatchesSequential pins that the facade changes locking,
// not arithmetic: the same event sequence applied through Concurrent and
// through a bare Engine yields bit-identical trust matrices.
func TestConcurrentMatchesSequential(t *testing.T) {
	cfg := DefaultConfig()
	c, err := NewConcurrentEngine(10, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(10, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(31)
	for k := 0; k < 200; k++ {
		i, j := rng.Intn(10), rng.Intn(10)
		fid := eval.FileID(fmt.Sprintf("f%d", rng.Intn(8)))
		now := time.Duration(k) * time.Minute
		ev := Event{Kind: EventVote, I: i, File: fid, Value: rng.Float64(), Time: now}
		if k%3 == 0 && i != j {
			ev = Event{Kind: EventDownload, I: i, J: j, File: fid, Size: 2048, Time: now}
		}
		if err := c.ApplyEvent(ev); err != nil {
			t.Fatal(err)
		}
		if err := e.ApplyEvent(ev); err != nil {
			t.Fatal(err)
		}
	}
	want, err := e.BuildTM(200 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.TM(200 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	mustMatchRef(t, "concurrent TM", want.Thaw(), got)
}

// TestConcurrentSwap pins the restore path: after Swap, reads observe the
// new engine's state.
func TestConcurrentSwap(t *testing.T) {
	c, err := NewConcurrentEngine(5, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Vote(0, "f", 0.9, 0); err != nil {
		t.Fatal(err)
	}
	fresh, err := NewEngine(5, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c.Swap(fresh)
	if _, ok := c.Evaluation(0, "f", 0); ok {
		t.Fatal("evaluation survived an engine swap")
	}
	if err := c.Locked(func(e *Engine) error { return e.Vote(1, "g", 0.5, 0) }); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Evaluation(1, "g", 0); !ok {
		t.Fatal("Locked mutation not visible")
	}
}

// TestApplyBatch checks the group-commit ingest path: a batch applied
// under one lock acquisition must leave the engine in exactly the state
// of the same events applied one by one, and a mid-batch failure must
// keep the prefix.
func TestApplyBatch(t *testing.T) {
	const n = 8
	cfg := DefaultConfig()
	mk := func() *Concurrent {
		c, err := NewConcurrentEngine(n, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	evs := []Event{
		{Kind: EventDownload, I: 0, J: 1, File: "f1", Size: 1 << 10, Time: time.Second},
		{Kind: EventVote, I: 0, File: "f1", Value: 0.9, Time: 2 * time.Second},
		{Kind: EventRateUser, I: 0, J: 1, Value: 0.8},
		{Kind: EventDownload, I: 2, J: 1, File: "f1", Size: 1 << 11, Time: 3 * time.Second},
		{Kind: EventVote, I: 2, File: "f1", Value: 0.7, Time: 4 * time.Second},
	}
	batched, single := mk(), mk()
	if err := batched.ApplyBatch(evs); err != nil {
		t.Fatal(err)
	}
	for _, ev := range evs {
		if err := single.ApplyEvent(ev); err != nil {
			t.Fatal(err)
		}
	}
	now := 5 * time.Second
	rb, err := batched.Reputations(0, now)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := single.Reputations(0, now)
	if err != nil {
		t.Fatal(err)
	}
	if len(rb) != len(rs) {
		t.Fatalf("reputation map sizes differ: %d vs %d", len(rb), len(rs))
	}
	for j, v := range rs {
		if rb[j] != v {
			t.Fatalf("reputation[%d] = %v batched vs %v single", j, rb[j], v)
		}
	}

	// A failing event reports its index and nothing from the batch is
	// applied — the all-or-report contract.
	c := mk()
	bad := []Event{
		{Kind: EventRateUser, I: 0, J: 1, Value: 0.5},
		{Kind: EventRateUser, I: 99, J: 1, Value: 0.5}, // out of range
		{Kind: EventRateUser, I: 2, J: 1, Value: 0.5},
	}
	err = c.ApplyBatch(bad)
	if err == nil {
		t.Fatal("want error for out-of-range peer in batch")
	}
	var be *BatchError
	if !errors.As(err, &be) || be.Index != 1 {
		t.Fatalf("error %q is not a BatchError naming index 1", err)
	}
	if !strings.Contains(err.Error(), "batch event 1") {
		t.Fatalf("error %q does not name the failing index", err)
	}
	st := c.ExportState()
	for i, ut := range st.UserTrust {
		if len(ut) != 0 {
			t.Fatalf("event for peer %d applied from a failed batch", i)
		}
	}
}
