package core

import (
	"fmt"
	"time"

	"mdrep/internal/eval"
)

// The engine's mutation surface is an event model: every state change is
// expressed as a serializable Event and applied through ApplyEvent. The
// public mutating methods (Vote, RecordDownload, …) are thin constructors
// over it. This is what makes the engine journal-able — internal/journal
// appends the encoded event to a write-ahead log before applying it, and
// crash recovery replays the same events through the same code path, so a
// restored engine is the engine that crashed.

// EventKind discriminates engine events. Values are part of the on-disk
// journal format — append new kinds, never renumber.
type EventKind uint8

const (
	// EventSetImplicit records an implicit (retention-derived) evaluation:
	// I = peer, File, Value, Time.
	EventSetImplicit EventKind = 1
	// EventVote records an explicit evaluation: I = peer, File, Value, Time.
	EventVote EventKind = 2
	// EventDownload records a completed transfer: I = downloader,
	// J = uploader, File, Size, Time.
	EventDownload EventKind = 3
	// EventRateUser records UT_ij: I, J, Value.
	EventRateUser EventKind = 4
	// EventBlacklist permanently zeroes UT_ij: I, J.
	EventBlacklist EventKind = 5
	// EventCompact drops expired evaluations as of Time.
	EventCompact EventKind = 6
)

// String names the kind for diagnostics.
func (k EventKind) String() string {
	switch k {
	case EventSetImplicit:
		return "set-implicit"
	case EventVote:
		return "vote"
	case EventDownload:
		return "download"
	case EventRateUser:
		return "rate-user"
	case EventBlacklist:
		return "blacklist"
	case EventCompact:
		return "compact"
	default:
		return fmt.Sprintf("event(%d)", uint8(k))
	}
}

// Event is one serializable engine mutation. Unused fields are zero for
// kinds that do not need them.
type Event struct {
	Kind EventKind `json:"kind"`
	// I is the acting peer; J the target peer where one exists.
	I int `json:"i"`
	J int `json:"j,omitempty"`
	// File is the subject file for evaluation and download events.
	File eval.FileID `json:"file,omitempty"`
	// Value is the evaluation or rating in [0,1].
	Value float64 `json:"value,omitempty"`
	// Size is the transfer size in bytes for download events.
	Size int64 `json:"size,omitempty"`
	// Time is the virtual time the event occurred at.
	Time time.Duration `json:"time,omitempty"`
}

// ValidateEvent checks an event against a population of n peers without
// applying it. It covers every error path of ApplyEvent, so a batch that
// validates clean is guaranteed to apply clean — the precondition the
// all-or-report ApplyBatch contract (and the sharded group-commit path)
// is built on.
func ValidateEvent(n int, ev Event) error {
	checkPeer := func(p int) error {
		if p < 0 || p >= n {
			return fmt.Errorf("core: peer %d outside [0, %d)", p, n)
		}
		return nil
	}
	switch ev.Kind {
	case EventSetImplicit, EventVote:
		return checkPeer(ev.I)
	case EventDownload:
		if err := checkPeer(ev.I); err != nil {
			return err
		}
		if err := checkPeer(ev.J); err != nil {
			return err
		}
		if ev.I == ev.J {
			return fmt.Errorf("core: self-download by peer %d", ev.I)
		}
		if ev.Size < 0 {
			return fmt.Errorf("core: negative size %d", ev.Size)
		}
		return nil
	case EventRateUser:
		if err := checkPeer(ev.I); err != nil {
			return err
		}
		if err := checkPeer(ev.J); err != nil {
			return err
		}
		if ev.I == ev.J {
			return fmt.Errorf("core: self-rating by peer %d", ev.I)
		}
		if ev.Value < 0 || ev.Value > 1 {
			return fmt.Errorf("core: user rating %v outside [0,1]", ev.Value)
		}
		return nil
	case EventBlacklist:
		if err := checkPeer(ev.I); err != nil {
			return err
		}
		return checkPeer(ev.J)
	case EventCompact:
		return nil
	default:
		return fmt.Errorf("core: unknown event kind %d", ev.Kind)
	}
}

// BatchError reports which event of a batch failed validation. The
// wrapped error is the per-event error ApplyEvent would have returned.
type BatchError struct {
	// Index is the offset of the failing event in the batch.
	Index int
	// Err is the validation failure.
	Err error
}

func (b *BatchError) Error() string {
	return fmt.Sprintf("core: batch event %d: %v", b.Index, b.Err)
}

// Unwrap exposes the per-event error for errors.Is/As.
func (b *BatchError) Unwrap() error { return b.Err }

// ApplyEvent applies one event to the engine. It is deterministic: the
// same events applied in the same order to the same initial state produce
// the same engine state, which is what journal replay depends on.
//
// Each event also invalidates exactly the cached dimension rows it can
// affect (see Engine): an evaluation dirties the FM rows of the file's
// co-evaluators and the evaluator's DM row, a download one DM row, a
// rating or blacklisting one UM row.
func (e *Engine) ApplyEvent(ev Event) error {
	return e.applyTo(ev, e.markDim)
}

// applyTo applies one event, reporting cache invalidations through mark
// instead of the engine's own dimension caches. It is the shared
// mutation path under both facades: the unsharded Engine passes markDim;
// core.Sharded passes a marker that routes each row to its owning
// shard's dirty tracker. Evidence mutations only ever touch the acting
// peer's own rows (stores[I], downloads[I], userTrust[I], blacklist[I])
// plus the stripe-locked evaluator index, which is what lets shards
// apply disjoint owners' events concurrently.
func (e *Engine) applyTo(ev Event, mark markFunc) error {
	if err := ValidateEvent(e.n, ev); err != nil {
		return err
	}
	switch ev.Kind {
	case EventSetImplicit:
		e.stores[ev.I].SetImplicit(ev.File, ev.Value, ev.Time)
		e.indexEvaluator(ev.File, ev.I)
		e.dirtyEvaluationTo(ev.I, ev.File, mark)
	case EventVote:
		e.stores[ev.I].Vote(ev.File, ev.Value, ev.Time)
		e.indexEvaluator(ev.File, ev.I)
		e.dirtyEvaluationTo(ev.I, ev.File, mark)
	case EventDownload:
		m := e.downloads[ev.I]
		if m == nil {
			m = make(map[int][]downloadEntry)
			e.downloads[ev.I] = m
		}
		m[ev.J] = append(m[ev.J], downloadEntry{file: ev.File, size: ev.Size})
		mark(dimDM, ev.I)
	case EventRateUser:
		if bl := e.blacklist[ev.I]; bl != nil {
			if _, banned := bl[ev.J]; banned {
				return nil
			}
		}
		if e.userTrust[ev.I] == nil {
			e.userTrust[ev.I] = make(map[int]float64)
		}
		e.userTrust[ev.I][ev.J] = ev.Value
		mark(dimUM, ev.I)
	case EventBlacklist:
		if e.blacklist[ev.I] == nil {
			e.blacklist[ev.I] = make(map[int]struct{})
		}
		e.blacklist[ev.I][ev.J] = struct{}{}
		if e.userTrust[ev.I] != nil {
			delete(e.userTrust[ev.I], ev.J)
		}
		mark(dimUM, ev.I)
	case EventCompact:
		e.compactEvidence(ev.Time, nil, mark)
	}
	return nil
}
