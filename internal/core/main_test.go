package core

import (
	"testing"

	"mdrep/internal/testutil"
)

// TestMain fails the package if any goroutine survives the tests — the
// sharded facade's batch and rebuild workers are transient and must all
// have unwound.
func TestMain(m *testing.M) { testutil.RunMain(m) }
