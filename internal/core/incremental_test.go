package core

import (
	"fmt"
	"testing"
	"time"

	"mdrep/internal/eval"
	"mdrep/internal/sim"
	"mdrep/internal/sparse"
)

// The incremental build path must be indistinguishable from a from-scratch
// rebuild — not approximately: bit-for-bit, entry-for-entry. These tests
// drive an engine through randomised event streams interleaved with builds
// at moving (and occasionally reversed) virtual times, compactions and
// window expiry, and after every build compare the patched CSR matrices
// against the map-backed reference builders, which still construct
// everything from scratch.

// mustMatchRef fails unless the CSR equals the reference matrix exactly.
func mustMatchRef(t *testing.T, label string, ref *sparse.Matrix, got *sparse.CSR) {
	t.Helper()
	want := ref.Entries()
	have := got.Entries()
	if len(want) != len(have) {
		t.Fatalf("%s: %d entries, want %d", label, len(have), len(want))
	}
	for k := range want {
		if want[k] != have[k] {
			t.Fatalf("%s: entry %d = %+v, want %+v", label, k, have[k], want[k])
		}
	}
}

// checkAllDims builds every dimension incrementally and compares against
// the from-scratch references.
func checkAllDims(t *testing.T, e *Engine, now time.Duration, label string) {
	t.Helper()
	mustMatchRef(t, label+"/FM", e.buildFMRef(now), e.BuildFM(now))
	mustMatchRef(t, label+"/DM", e.buildDMRef(now), e.BuildDM(now))
	mustMatchRef(t, label+"/UM", e.buildUMRef(), e.BuildUM())
	refTM, err := e.buildTMRef(now)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := e.BuildTM(now)
	if err != nil {
		t.Fatal(err)
	}
	mustMatchRef(t, label+"/TM", refTM, tm)
}

// applyRandomEvent applies one random valid event and returns a description.
func applyRandomEvent(t *testing.T, e *Engine, r *sim.RNG, n int, now time.Duration) {
	t.Helper()
	i, j := r.Intn(n), r.Intn(n)
	fid := eval.FileID(fmt.Sprintf("f%d", r.Intn(12)))
	var err error
	switch r.Intn(6) {
	case 0:
		err = e.Vote(i, fid, r.Float64(), now)
	case 1:
		err = e.SetImplicit(i, fid, r.Float64(), now)
	case 2:
		if i == j {
			return
		}
		err = e.RecordDownload(i, j, fid, int64(r.Intn(1<<20)+1), now)
	case 3:
		if i == j {
			return
		}
		err = e.RateUser(i, j, r.Float64())
	case 4:
		if i == j {
			return
		}
		err = e.Blacklist(i, j)
	case 5:
		e.Compact(now)
	}
	if err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalMatchesReference is the main differential property test:
// random event streams, builds at advancing times, windows short enough
// that evaluations expire mid-run, and periodic compaction.
func TestIncrementalMatchesReference(t *testing.T) {
	rng := sim.NewRNG(211)
	for trial := 0; trial < 8; trial++ {
		r := rng.DeriveStream(fmt.Sprintf("trial-%d", trial))
		n := 4 + r.Intn(14)
		cfg := DefaultConfig()
		if trial%2 == 0 {
			// Short window: records expire between builds.
			cfg.Window = 30 * time.Minute
		}
		if trial%3 == 0 {
			cfg.MaxEvaluatorsPerFile = 3
		}
		e, err := NewEngine(n, cfg)
		if err != nil {
			t.Fatal(err)
		}
		now := time.Duration(0)
		for step := 0; step < 120; step++ {
			now += time.Duration(r.Intn(10)) * time.Minute
			applyRandomEvent(t, e, r, n, now)
			if step%17 == 0 {
				checkAllDims(t, e, now, fmt.Sprintf("trial %d step %d", trial, step))
			}
		}
		// Builds strictly after the last event, far enough ahead that the
		// whole window drains.
		checkAllDims(t, e, now+time.Hour, fmt.Sprintf("trial %d post", trial))
		checkAllDims(t, e, now+48*time.Hour, fmt.Sprintf("trial %d drained", trial))
	}
}

// TestIncrementalExpiryWithoutEvents pins the pure-time invalidation path:
// rows must change when evaluations expire even though no event arrives
// between builds.
func TestIncrementalExpiryWithoutEvents(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Window = time.Hour
	e, err := NewEngine(4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Vote(0, "f", 0.9, 0); err != nil {
		t.Fatal(err)
	}
	if err := e.Vote(1, "f", 0.8, 0); err != nil {
		t.Fatal(err)
	}
	if err := e.Vote(2, "f", 0.7, 30*time.Minute); err != nil {
		t.Fatal(err)
	}
	checkAllDims(t, e, 0, "fresh")
	if e.BuildFM(0).NNZ() == 0 {
		t.Fatal("no FM entries while evaluations are live")
	}
	// 0 and 1 expire at t > 1h; 2 survives until t > 1h30m.
	checkAllDims(t, e, 61*time.Minute, "partial expiry")
	checkAllDims(t, e, 2*time.Hour, "full expiry")
	if e.BuildFM(2*time.Hour).NNZ() != 0 {
		t.Fatal("FM entries survived the window")
	}
}

// TestIncrementalTimeBackwards pins the full-invalidation path: building
// at an earlier time than the previous build must still agree with the
// reference (liveness is evaluated at build time).
func TestIncrementalTimeBackwards(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Window = time.Hour
	e, err := NewEngine(3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Vote(0, "f", 0.9, 0); err != nil {
		t.Fatal(err)
	}
	if err := e.Vote(1, "f", 0.4, 50*time.Minute); err != nil {
		t.Fatal(err)
	}
	checkAllDims(t, e, 100*time.Minute, "late") // vote at 0 has expired
	checkAllDims(t, e, 10*time.Minute, "early") // …and is live again here
	if e.BuildFM(10*time.Minute).NNZ() == 0 {
		t.Fatal("rewound build lost the early evaluation")
	}
}

// TestIncrementalCompactionInvalidates pins compaction dirtying: compact
// at a late time removes records outright, which must invalidate builds at
// earlier times too (the record would have been live there).
func TestIncrementalCompactionInvalidates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Window = time.Hour
	e, err := NewEngine(3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Vote(0, "f", 0.9, 0); err != nil {
		t.Fatal(err)
	}
	if err := e.Vote(1, "f", 0.5, 0); err != nil {
		t.Fatal(err)
	}
	checkAllDims(t, e, 0, "before compact")
	e.Compact(2 * time.Hour) // drops both votes
	checkAllDims(t, e, 0, "after compact")
	if e.BuildFM(0).NNZ() != 0 {
		t.Fatal("compacted records still contribute at an earlier build time")
	}
}

// TestCachedTM pins the read-path cache contract: a hit returns the exact
// frozen matrix of the last build, and any event or time change with a
// live window misses.
func TestCachedTM(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Window = time.Hour
	e, err := NewEngine(3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.CachedTM(0); ok {
		t.Fatal("cache hit before any build")
	}
	if err := e.Vote(0, "f", 0.9, 0); err != nil {
		t.Fatal(err)
	}
	tm, err := e.BuildTM(0)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := e.CachedTM(0)
	if !ok || got != tm {
		t.Fatal("cache miss immediately after build")
	}
	if _, ok := e.CachedTM(time.Minute); ok {
		t.Fatal("cache hit at a different time with a live window")
	}
	if err := e.Vote(1, "f", 0.4, 0); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.CachedTM(0); ok {
		t.Fatal("cache hit after an event dirtied rows")
	}
	epoch := e.Epoch()
	if _, err := e.BuildTM(0); err != nil {
		t.Fatal(err)
	}
	if e.Epoch() == epoch {
		t.Fatal("epoch did not advance on a changed rebuild")
	}
}

// TestCachedTMWindowless pins the Window == 0 fast path: with no expiry
// the matrices are time-independent, so the cache hits at any now.
func TestCachedTMWindowless(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Window = 0
	e, err := NewEngine(3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Vote(0, "f", 0.9, 0); err != nil {
		t.Fatal(err)
	}
	tm, err := e.BuildTM(0)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := e.CachedTM(5 * time.Hour)
	if !ok || got != tm {
		t.Fatal("windowless cache missed at a different time")
	}
}

// TestBuildTMStableAcrossNoOpRebuilds: repeated builds with no changes
// return the identical *sparse.CSR and keep the epoch fixed.
func TestBuildTMStableAcrossNoOpRebuilds(t *testing.T) {
	e, err := NewEngine(4, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Vote(0, "f", 0.9, 0); err != nil {
		t.Fatal(err)
	}
	tm1, err := e.BuildTM(0)
	if err != nil {
		t.Fatal(err)
	}
	epoch := e.Epoch()
	tm2, err := e.BuildTM(0)
	if err != nil {
		t.Fatal(err)
	}
	if tm1 != tm2 {
		t.Fatal("no-op rebuild allocated a new TM")
	}
	if e.Epoch() != epoch {
		t.Fatal("no-op rebuild advanced the epoch")
	}
}

// TestRestoredEngineMatchesOriginal: an engine rebuilt from an exported
// state produces bit-identical matrices (the journal snapshot contract).
func TestRestoredEngineMatchesOriginal(t *testing.T) {
	rng := sim.NewRNG(223)
	cfg := DefaultConfig()
	cfg.Window = 45 * time.Minute
	e, err := NewEngine(8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Duration(0)
	for step := 0; step < 80; step++ {
		now += time.Duration(rng.Intn(5)) * time.Minute
		applyRandomEvent(t, e, rng, 8, now)
	}
	// Build mid-stream so the original's caches are warm (the restored
	// engine starts cold — the comparison crosses cache states).
	if _, err := e.BuildTM(now); err != nil {
		t.Fatal(err)
	}
	restored, err := NewEngineFromState(e.ExportState(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, at := range []time.Duration{now, now + 30*time.Minute, now + 3*time.Hour} {
		want, err := e.BuildTM(at)
		if err != nil {
			t.Fatal(err)
		}
		got, err := restored.BuildTM(at)
		if err != nil {
			t.Fatal(err)
		}
		mustMatchRef(t, fmt.Sprintf("restore at %v", at), want.Thaw(), got)
	}
}
