package core

import (
	"strconv"

	"mdrep/internal/metrics"
	"mdrep/internal/obs"
)

// ShardedObs is the sharded facade's metrics surface: group-commit
// batch and per-shard event counts on the ingest path, rebuild and
// per-shard rebuild latency, the wait to acquire every shard lock
// (writer contention made visible), and TM refreeze count. All series
// carrying a per-shard dimension use a "shard" label so dashboards can
// spot a hot shard. A nil observer disables everything, as EngineObs.
type ShardedObs struct {
	tracer *obs.Tracer

	batches   *metrics.Counter     // sharded_ingest_batches_total
	events    []*metrics.Counter   // sharded_ingest_events_total{shard=i}
	rebuild   *metrics.Histogram   // sharded_rebuild_seconds
	perShard  []*metrics.Histogram // sharded_shard_rebuild_seconds{shard=i}
	lockWait  *metrics.Histogram   // sharded_rebuild_lock_wait_seconds
	refreezes *metrics.Counter     // sharded_tm_refreeze_total
}

// NewShardedObs registers the sharded metric families for k shards. A
// nil registry returns a nil (disabled) observer; a nil clock keeps the
// counters but disables latency spans.
func NewShardedObs(reg *metrics.Registry, clock obs.Clock, k int) *ShardedObs {
	if reg == nil {
		return nil
	}
	o := &ShardedObs{
		tracer:    obs.NewTracer(clock),
		batches:   reg.Counter("sharded_ingest_batches_total"),
		events:    make([]*metrics.Counter, k),
		rebuild:   reg.Histogram("sharded_rebuild_seconds", metrics.DurationBuckets),
		perShard:  make([]*metrics.Histogram, k),
		lockWait:  reg.Histogram("sharded_rebuild_lock_wait_seconds", metrics.DurationBuckets),
		refreezes: reg.Counter("sharded_tm_refreeze_total"),
	}
	for i := 0; i < k; i++ {
		o.events[i] = reg.Counter("sharded_ingest_events_total", "shard", shardLabel(i))
		o.perShard[i] = reg.Histogram("sharded_shard_rebuild_seconds", metrics.DurationBuckets, "shard", shardLabel(i))
	}
	return o
}

// shardLabel returns the canonical metric label for shard index i. The
// set is bounded by construction: NewSharded rejects k > MaxShards
// (256), and anything outside that range collapses to one overflow
// label rather than minting a series per bogus index.
//
//mdrep:labelset
func shardLabel(i int) string {
	if i < 0 || i >= MaxShards {
		return "overflow"
	}
	return strconv.Itoa(i)
}

// spanRebuild times one stop-the-world rebuild; nil-safe.
func (o *ShardedObs) spanRebuild() obs.Span {
	if o == nil {
		return obs.Span{}
	}
	return o.tracer.Start(o.rebuild)
}

// spanShardRebuild times one shard's recompute+refreeze; nil-safe.
func (o *ShardedObs) spanShardRebuild(si int) obs.Span {
	if o == nil || si >= len(o.perShard) {
		return obs.Span{}
	}
	return o.tracer.Start(o.perShard[si])
}

// spanLockWait times the acquisition of all shard locks; nil-safe.
func (o *ShardedObs) spanLockWait() obs.Span {
	if o == nil {
		return obs.Span{}
	}
	return o.tracer.Start(o.lockWait)
}
