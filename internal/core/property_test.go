package core

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
	"time"

	"mdrep/internal/eval"
	"mdrep/internal/sim"
)

// TestFileReputationBounded: R_f always lies within [min, max] of the
// contributing evaluations — a weighted mean cannot extrapolate.
func TestFileReputationBounded(t *testing.T) {
	rng := sim.NewRNG(101)
	f := func(nRaw uint8) bool {
		n := int(nRaw%10) + 1
		reps := make(map[int]float64, n)
		owners := make([]OwnerEvaluation, 0, n)
		lo, hi := 1.0, 0.0
		for i := 0; i < n; i++ {
			r := rng.Float64()
			if r == 0 {
				r = 0.5
			}
			reps[i] = r
			v := rng.Float64()
			owners = append(owners, OwnerEvaluation{Owner: i, Value: v})
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		rf, err := FileReputation(reps, owners)
		if err != nil {
			return false
		}
		return rf >= lo-1e-12 && rf <= hi+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestFileReputationMonotone: raising one evaluator's opinion never
// lowers R_f.
func TestFileReputationMonotone(t *testing.T) {
	rng := sim.NewRNG(103)
	f := func(nRaw, whichRaw uint8, bump float64) bool {
		n := int(nRaw%8) + 1
		which := int(whichRaw) % n
		bump = math.Abs(bump)
		if math.IsNaN(bump) || math.IsInf(bump, 0) {
			return true
		}
		reps := make(map[int]float64, n)
		owners := make([]OwnerEvaluation, 0, n)
		for i := 0; i < n; i++ {
			reps[i] = rng.Float64() + 0.01
			owners = append(owners, OwnerEvaluation{Owner: i, Value: rng.Float64()})
		}
		before, err := FileReputation(reps, owners)
		if err != nil {
			return false
		}
		raised := make([]OwnerEvaluation, len(owners))
		copy(raised, owners)
		v := raised[which].Value + bump
		if v > 1 {
			v = 1
		}
		raised[which].Value = v
		after, err := FileReputation(reps, raised)
		if err != nil {
			return false
		}
		return after >= before-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestEngineRowsSubStochastic: whatever evidence an engine ingests, every
// TM row sums to at most 1 (+ numerical slack) and all entries are
// non-negative — trust is a bounded resource.
func TestEngineRowsSubStochastic(t *testing.T) {
	rng := sim.NewRNG(107)
	f := func(seed uint16) bool {
		r := rng.DeriveStream(fmt.Sprintf("case-%d", seed))
		n := 4 + r.Intn(12)
		e, err := NewEngine(n, DefaultConfig())
		if err != nil {
			return false
		}
		ops := 30 + r.Intn(100)
		for k := 0; k < ops; k++ {
			i, j := r.Intn(n), r.Intn(n)
			fid := eval.FileID(fmt.Sprintf("f%d", r.Intn(20)))
			now := time.Duration(k) * time.Minute
			switch r.Intn(5) {
			case 0:
				_ = e.Vote(i, fid, r.Float64(), now)
			case 1:
				_ = e.SetImplicit(i, fid, r.Float64(), now)
			case 2:
				if i != j {
					_ = e.RecordDownload(i, j, fid, int64(r.Intn(1<<20)+1), now)
				}
			case 3:
				if i != j {
					_ = e.RateUser(i, j, r.Float64())
				}
			case 4:
				if i != j {
					_ = e.Blacklist(i, j)
				}
			}
		}
		tm, err := e.BuildTM(time.Duration(ops) * time.Minute)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			sum := 0.0
			cols, vals := tm.Row(i)
			for k, j := range cols {
				if vals[k] < 0 || j < 0 || int(j) >= n {
					return false
				}
				sum += vals[k]
			}
			if sum > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestReputationsNonNegativeAndBounded: multi-trust rows inherit the
// sub-stochastic property at any depth.
func TestReputationsNonNegativeAndBounded(t *testing.T) {
	rng := sim.NewRNG(109)
	for _, steps := range []int{1, 2, 3} {
		cfg := DefaultConfig()
		cfg.Steps = steps
		e, err := NewEngine(10, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 200; k++ {
			i, j := rng.Intn(10), rng.Intn(10)
			if i == j {
				continue
			}
			fid := eval.FileID(fmt.Sprintf("f%d", rng.Intn(15)))
			_ = e.Vote(i, fid, rng.Float64(), 0)
			_ = e.RecordDownload(i, j, fid, 1000, 0)
		}
		for i := 0; i < 10; i++ {
			reps, err := e.Reputations(i, 0)
			if err != nil {
				t.Fatal(err)
			}
			sum := 0.0
			for _, v := range reps {
				if v < 0 {
					t.Fatalf("steps=%d: negative reputation %v", steps, v)
				}
				sum += v
			}
			if sum > 1+1e-9 {
				t.Fatalf("steps=%d: reputation mass %v exceeds 1", steps, sum)
			}
		}
	}
}

// TestCoverageWindowMonotone: a longer retention window never reduces
// coverage (evaluations only live longer).
func TestCoverageWindowMonotone(t *testing.T) {
	tr := coverageTrace(t)
	prev := -1.0
	for _, window := range []time.Duration{12 * time.Hour, 3 * 24 * time.Hour, 10 * 24 * time.Hour, 0} {
		cfg := baseCoverageConfig()
		cfg.VoteFraction = 0.5
		cfg.Window = window
		frac := measure(t, tr, cfg).OverallFraction()
		if frac < prev-1e-12 {
			t.Fatalf("coverage decreased when window grew to %v: %v < %v", window, frac, prev)
		}
		prev = frac
	}
}
