package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mdrep/internal/eval"
	"mdrep/internal/sparse"
)

// Sharded is the scale-out concurrency facade over the trust core: it
// partitions the peer population across K shards by consistent hash on
// the peer index, each shard owning its peers' evidence (stores,
// download ledgers, user ratings, blacklists), its row-range of the
// FM/DM/UM matrices, and its own dirty-row trackers. Writers for
// different shards proceed in parallel — the property the single
// RWMutex of Concurrent cannot offer — while rebuilds freeze each
// shard's rows independently (sparse.FreezeNormalizedRows) and merge
// the pieces into the same global CSRs the unsharded Engine produces.
//
// Shardability rests on an ownership invariant of the event model:
// every evidence mutation of ApplyEvent touches only the acting peer's
// own state (stores[I], downloads[I], userTrust[I], blacklist[I]). The
// only cross-peer structures are the stripe-locked evaluator index
// (commutative set union) and the dirty trackers (commutative set
// union, routed to each row's owner shard). Events with distinct owners
// therefore commute, so applying a batch shard-by-shard instead of in
// submission order reaches the identical state — the shard-count
// invariance property sharded_test.go proves bit-for-bit.
//
// Lock ordering (enforced by the locksafe analyzer):
//
//  1. rebuildMu — serialises stop-the-world rebuilds.
//  2. shard data locks (shards[i].mu) — always acquired in ascending
//     shard index order when more than one is held.
//  3. evaluator-index stripe locks — acquired under a data lock, never
//     the other way around.
//  4. shard dirty locks (shards[i].dirtyMu) — leaves: nothing is
//     acquired while one is held, so marks may be routed to any shard
//     from under any data or stripe lock.
//
// Read paths (Reputations, JudgeFile, BuildRM) synchronise only on the
// TM cache: a hit returns the immutable frozen CSR and the multi-trust
// walk runs without any lock, exactly as under Concurrent.
type Sharded struct {
	eng *Engine // shared evidence container + row math; never used directly by callers
	k   int
	// shardOf maps peer → owner shard (consistent hash, fixed at
	// construction); owned lists each shard's peers ascending.
	shardOf []uint8
	owned   [][]int
	shards  []shard

	// version counts evidence mutations; the TM cache is valid only for
	// the version it was built at. Bumped while holding the owner
	// shard's data lock, so under all data locks it is quiescent.
	version atomic.Uint64
	epoch   atomic.Uint64
	tmCache atomic.Pointer[shardedTM]

	// Build state below is guarded by rebuildMu (writers) and published
	// to readers only through tmCache.
	rebuildMu  sync.Mutex
	dims       [3]shardedDim
	tm         *sparse.CSR
	tmSrc      [3]*sparse.CSR
	lastNow    time.Duration
	lastNowSet bool

	obs  *EngineObs // reputation-walk spans, shared with Concurrent's surface
	sobs *ShardedObs
}

// shard is one partition's locks and dirty-row trackers. The zero-ish
// state set up by NewSharded has every dimension all-dirty.
type shard struct {
	// mu guards the owned peers' evidence in the shared engine.
	mu sync.Mutex
	// dirtyMu guards the trackers below; it is a leaf lock.
	dirtyMu sync.Mutex
	dirty   [3]map[int]struct{}
	all     [3]bool
}

// shardedDim is the build state of one trust dimension: the raw rows
// (global-length, row i written only by its owner shard's rebuild
// worker), the per-shard frozen pieces, and the merged global CSR.
type shardedDim struct {
	rows   []map[int]float64
	sets   []*sparse.RowSet
	frozen *sparse.CSR
}

// shardedTM is the lock-free TM cache entry.
type shardedTM struct {
	tm      *sparse.CSR
	now     time.Duration
	version uint64
}

// MaxShards bounds K; shard indices are stored as uint8.
const MaxShards = 256

// ShardIndex is the consistent-hash router: peer p's owner among k
// shards. It is a pure function of (p, k) — the same peer lands on the
// same shard in every process, which the per-shard journal layout
// (journal.OpenSharded) depends on. The hash is splitmix64's finalizer,
// so consecutive peer indices scatter instead of striping.
func ShardIndex(p, k int) int {
	x := uint64(p) + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e9b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(k))
}

// NewSharded builds a sharded engine for n peers across k shards.
// k = 1 degenerates to a single shard and is byte-identical to the
// unsharded Engine on every output — the anchor of the invariance
// property test.
func NewSharded(n, k int, cfg Config) (*Sharded, error) {
	if k < 1 || k > MaxShards {
		return nil, fmt.Errorf("core: shard count %d outside [1, %d]", k, MaxShards)
	}
	eng, err := NewEngine(n, cfg)
	if err != nil {
		return nil, err
	}
	s := &Sharded{
		eng:     eng,
		k:       k,
		shardOf: make([]uint8, n),
		owned:   make([][]int, k),
		shards:  make([]shard, k),
	}
	for p := 0; p < n; p++ {
		si := ShardIndex(p, k)
		s.shardOf[p] = uint8(si)
		s.owned[si] = append(s.owned[si], p)
	}
	for si := range s.shards {
		sh := &s.shards[si]
		for d := 0; d < 3; d++ {
			sh.dirty[d] = make(map[int]struct{})
			sh.all[d] = true
		}
	}
	for d := 0; d < 3; d++ {
		s.dims[d].rows = make([]map[int]float64, n)
		s.dims[d].sets = make([]*sparse.RowSet, k)
	}
	return s, nil
}

// N returns the population size.
func (s *Sharded) N() int { return s.eng.N() }

// K returns the shard count.
func (s *Sharded) K() int { return s.k }

// Config returns the engine configuration.
func (s *Sharded) Config() Config { return s.eng.Config() }

// Epoch returns the TM rebuild counter, as Engine.Epoch.
func (s *Sharded) Epoch() uint64 { return s.epoch.Load() }

// ShardOf returns peer p's owner shard.
func (s *Sharded) ShardOf(p int) int { return int(s.shardOf[p]) }

// SetObserver attaches the engine metrics observer (reputation-walk
// spans); per-shard ingest/rebuild metrics attach via SetShardObserver.
func (s *Sharded) SetObserver(o *EngineObs) { s.obs = o }

// SetShardObserver attaches the per-shard metrics observer.
func (s *Sharded) SetShardObserver(o *ShardedObs) { s.sobs = o }

// markShard routes a dirty-row mark to the row's owner shard. It may be
// called from under any data or index stripe lock: dirtyMu is a leaf.
func (s *Sharded) markShard(dim int, row int) {
	sh := &s.shards[s.shardOf[row]]
	sh.dirtyMu.Lock()
	if !sh.all[dim] {
		sh.dirty[dim][row] = struct{}{}
	}
	sh.dirtyMu.Unlock()
}

// lockAll acquires every shard data lock in ascending index order — the
// stop-the-world prefix of rebuilds, global compaction and state export.
func (s *Sharded) lockAll() {
	for si := range s.shards {
		s.shards[si].mu.Lock()
	}
}

func (s *Sharded) unlockAll() {
	for si := range s.shards {
		s.shards[si].mu.Unlock()
	}
}

// parallelShards runs fn(si) for every shard on transient goroutines and
// waits. Workers are not pooled: nothing outlives the call, which keeps
// the facade invisible to goroutine-leak checks and lets rebuild
// parallelism follow GOMAXPROCS.
func (s *Sharded) parallelShards(fn func(si int)) {
	var wg sync.WaitGroup
	wg.Add(s.k)
	for si := 0; si < s.k; si++ {
		go func(si int) {
			defer wg.Done()
			fn(si)
		}(si)
	}
	wg.Wait()
}

// --- mutations ---------------------------------------------------------------

// ApplyEvent validates and applies one event under its owner shard's
// lock. EventCompact touches every shard's evidence and runs
// stop-the-world.
func (s *Sharded) ApplyEvent(ev Event) error {
	if err := ValidateEvent(s.eng.n, ev); err != nil {
		return err
	}
	if ev.Kind == EventCompact {
		s.lockAll()
		s.eng.compactEvidence(ev.Time, nil, s.markShard)
		s.version.Add(1)
		s.unlockAll()
		return nil
	}
	sh := &s.shards[s.shardOf[ev.I]]
	sh.mu.Lock()
	err := s.eng.applyTo(ev, s.markShard)
	s.version.Add(1)
	sh.mu.Unlock()
	return err
}

// ApplyBatch is the group-commit ingest path: the batch is prevalidated
// (inheriting the all-or-report contract of Concurrent.ApplyBatch — on
// a *BatchError nothing is applied), partitioned by owner shard, and
// each shard's sub-batch applies in submission order under that shard's
// lock, all shards in parallel. Because events with distinct owners
// commute (see type comment), the result is identical to sequential
// application. Batches containing EventCompact fall back to sequential
// ApplyEvent calls: compaction is a global barrier.
func (s *Sharded) ApplyBatch(evs []Event) error {
	n := s.eng.n
	hasCompact := false
	for k := range evs {
		if err := ValidateEvent(n, evs[k]); err != nil {
			return &BatchError{Index: k, Err: err}
		}
		if evs[k].Kind == EventCompact {
			hasCompact = true
		}
	}
	if s.sobs != nil {
		s.sobs.batches.Inc()
	}
	if hasCompact {
		for k := range evs {
			if err := s.ApplyEvent(evs[k]); err != nil {
				panic(fmt.Sprintf("core: prevalidated batch event %d failed: %v", k, err))
			}
		}
		return nil
	}
	parts := make([][]Event, s.k)
	for _, ev := range evs {
		si := s.shardOf[ev.I]
		parts[si] = append(parts[si], ev)
	}
	var wg sync.WaitGroup
	for si := range parts {
		if len(parts[si]) == 0 {
			continue
		}
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			sh := &s.shards[si]
			sh.mu.Lock()
			for _, ev := range parts[si] {
				if err := s.eng.applyTo(ev, s.markShard); err != nil {
					panic(fmt.Sprintf("core: prevalidated event failed on shard %d: %v", si, err))
				}
			}
			s.version.Add(1)
			sh.mu.Unlock()
			if s.sobs != nil {
				s.sobs.events[si].Add(uint64(len(parts[si])))
			}
		}(si)
	}
	wg.Wait()
	return nil
}

// ApplyShard applies one event that must belong to shard si — the
// journal replay path, where each shard's log replays independently. An
// EventCompact in a shard log compacts only that shard's peers; the
// union over all shard logs reproduces the global compaction (see
// Engine.compactEvidence).
func (s *Sharded) ApplyShard(si int, ev Event) error {
	if si < 0 || si >= s.k {
		return fmt.Errorf("core: shard %d outside [0, %d)", si, s.k)
	}
	if err := ValidateEvent(s.eng.n, ev); err != nil {
		return err
	}
	sh := &s.shards[si]
	if ev.Kind == EventCompact {
		sh.mu.Lock()
		s.eng.compactEvidence(ev.Time, s.ownsFunc(si), s.markShard)
		s.version.Add(1)
		sh.mu.Unlock()
		return nil
	}
	if int(s.shardOf[ev.I]) != si {
		return fmt.Errorf("core: event for peer %d (shard %d) replayed into shard %d", ev.I, s.shardOf[ev.I], si)
	}
	sh.mu.Lock()
	err := s.eng.applyTo(ev, s.markShard)
	s.version.Add(1)
	sh.mu.Unlock()
	return err
}

func (s *Sharded) ownsFunc(si int) func(p int) bool {
	return func(p int) bool { return int(s.shardOf[p]) == si }
}

// SetImplicit mirrors Engine.SetImplicit.
func (s *Sharded) SetImplicit(p int, f eval.FileID, value float64, now time.Duration) error {
	return s.ApplyEvent(Event{Kind: EventSetImplicit, I: p, File: f, Value: value, Time: now})
}

// ObserveRetention mirrors Engine.ObserveRetention.
func (s *Sharded) ObserveRetention(p int, f eval.FileID, retention time.Duration, deleted bool, now time.Duration) error {
	return s.SetImplicit(p, f, s.Config().Retention.Implicit(retention, deleted), now)
}

// Vote mirrors Engine.Vote.
func (s *Sharded) Vote(p int, f eval.FileID, value float64, now time.Duration) error {
	return s.ApplyEvent(Event{Kind: EventVote, I: p, File: f, Value: value, Time: now})
}

// RecordDownload mirrors Engine.RecordDownload.
func (s *Sharded) RecordDownload(downloader, uploader int, f eval.FileID, size int64, now time.Duration) error {
	return s.ApplyEvent(Event{Kind: EventDownload, I: downloader, J: uploader, File: f, Size: size, Time: now})
}

// RateUser mirrors Engine.RateUser.
func (s *Sharded) RateUser(i, j int, value float64) error {
	return s.ApplyEvent(Event{Kind: EventRateUser, I: i, J: j, Value: value})
}

// AddFriend mirrors Engine.AddFriend.
func (s *Sharded) AddFriend(i, j int) error {
	return s.RateUser(i, j, s.Config().FriendTrust)
}

// Blacklist mirrors Engine.Blacklist.
func (s *Sharded) Blacklist(i, j int) error {
	return s.ApplyEvent(Event{Kind: EventBlacklist, I: i, J: j})
}

// Compact mirrors Engine.Compact (stop-the-world, see ApplyEvent).
func (s *Sharded) Compact(now time.Duration) {
	_ = s.ApplyEvent(Event{Kind: EventCompact, Time: now})
}

// --- rebuild -----------------------------------------------------------------

// cachedTM returns the frozen TM if it is current: built at the present
// mutation version, and at the same virtual time unless nothing can
// expire (Window == 0 makes the matrices time-independent, as in
// Engine.CachedTM).
func (s *Sharded) cachedTM(now time.Duration) (*sparse.CSR, bool) {
	c := s.tmCache.Load()
	if c == nil || c.version != s.version.Load() {
		return nil, false
	}
	if c.now != now && s.eng.cfg.Window > 0 {
		return nil, false
	}
	return c.tm, true
}

// TM returns the frozen trust matrix at now, rebuilding per-shard in
// parallel on a cache miss.
func (s *Sharded) TM(now time.Duration) (*sparse.CSR, error) {
	if tm, ok := s.cachedTM(now); ok {
		return tm, nil
	}
	return s.rebuild(now)
}

// rebuild is the stop-the-world build: under rebuildMu and every shard
// data lock (ascending), it reconciles virtual time, drains each
// shard's dirty trackers, recomputes the dirty rows of each dimension
// per shard in parallel (reusing the exact row functions of the
// unsharded engine), refreezes changed shards' row sets, merges them
// into global CSRs and integrates TM. Rows accumulate in the same
// ascending order as the unsharded build and the freeze/merge math is
// bit-identical to FreezeNormalized (see sparse.RowSet), so the result
// is byte-identical for any K and any GOMAXPROCS.
func (s *Sharded) rebuild(now time.Duration) (*sparse.CSR, error) {
	s.rebuildMu.Lock()
	defer s.rebuildMu.Unlock()
	if tm, ok := s.cachedTM(now); ok {
		return tm, nil
	}
	lockSp := s.sobs.spanLockWait()
	s.lockAll()
	lockSp.End()
	defer s.unlockAll()
	sp := s.sobs.spanRebuild()
	defer sp.End()
	ver := s.version.Load() // quiescent: mutators bump under a data lock we hold

	// Time reconciliation, as Engine.advanceTime: backwards invalidates
	// everything, forwards dirties the rows of evidence that expired in
	// (lastNow, now].
	switch {
	case !s.lastNowSet:
		s.lastNow, s.lastNowSet = now, true
	case now < s.lastNow:
		for si := range s.shards {
			sh := &s.shards[si]
			sh.dirtyMu.Lock()
			for d := 0; d < 3; d++ {
				sh.all[d] = true
				if len(sh.dirty[d]) > 0 {
					sh.dirty[d] = make(map[int]struct{})
				}
			}
			sh.dirtyMu.Unlock()
		}
		s.lastNow = now
	case now > s.lastNow:
		if s.eng.cfg.Window > 0 {
			prev := s.lastNow
			s.parallelShards(func(si int) {
				for _, p := range s.owned[si] {
					for _, f := range s.eng.stores[p].ExpiredBetween(prev, now) {
						s.eng.dirtyEvaluationTo(p, f, s.markShard)
					}
				}
			})
		}
		s.lastNow = now
	}

	// Drain + recompute + refreeze, one worker per shard.
	var changed [3]atomic.Bool
	s.parallelShards(func(si int) {
		shSp := s.sobs.spanShardRebuild(si)
		defer shSp.End()
		sh := &s.shards[si]
		sh.dirtyMu.Lock()
		var dirty [3]map[int]struct{}
		var all [3]bool
		for d := 0; d < 3; d++ {
			all[d] = sh.all[d]
			sh.all[d] = false
			dirty[d] = sh.dirty[d]
			if len(dirty[d]) > 0 {
				sh.dirty[d] = make(map[int]struct{})
			}
		}
		sh.dirtyMu.Unlock()
		owned := s.owned[si]
		for d := 0; d < 3; d++ {
			dim := &s.dims[d]
			if !all[d] && len(dirty[d]) == 0 && dim.sets[si] != nil {
				continue
			}
			rowFn := s.rowFn(d, now)
			if all[d] || dim.sets[si] == nil {
				for _, i := range owned {
					dim.rows[i] = rowFn(i)
				}
			} else {
				for i := range dirty[d] {
					dim.rows[i] = rowFn(i)
				}
			}
			dim.sets[si] = sparse.FreezeNormalizedRows(s.eng.n, owned, dim.rows)
			changed[d].Store(true)
		}
	})

	// Merge changed dimensions and integrate TM (Eq. 7).
	for d := 0; d < 3; d++ {
		if !changed[d].Load() && s.dims[d].frozen != nil {
			continue
		}
		csr, err := sparse.MergeRowSets(s.eng.n, s.dims[d].sets)
		if err != nil {
			return nil, err
		}
		s.dims[d].frozen = csr
	}
	src := [3]*sparse.CSR{s.dims[dimFM].frozen, s.dims[dimDM].frozen, s.dims[dimUM].frozen}
	if s.tm == nil || src != s.tmSrc {
		cfg := s.eng.cfg
		tm, err := sparse.WeightedSum(s.eng.n, []sparse.Weighted{
			{Scale: cfg.Alpha, M: src[dimFM]},
			{Scale: cfg.Beta, M: src[dimDM]},
			{Scale: cfg.Gamma, M: src[dimUM]},
		})
		if err != nil {
			return nil, err
		}
		s.tm = tm
		s.tmSrc = src
		s.epoch.Add(1)
		if s.sobs != nil {
			s.sobs.refreezes.Inc()
		}
	}
	s.tmCache.Store(&shardedTM{tm: s.tm, now: now, version: ver})
	return s.tm, nil
}

// rowFn returns the raw row recompute function of dimension d. The
// functions read foreign peers' stores (FM pairs over co-evaluators),
// which is safe during rebuild: every data lock is held, store reads
// are pure, and each row is written only by its owner's worker.
func (s *Sharded) rowFn(d int, now time.Duration) func(i int) map[int]float64 {
	switch d {
	case dimFM:
		memo := make(map[eval.FileID]*fileEvaluators)
		return func(i int) map[int]float64 { return s.eng.fmRow(i, now, memo) }
	case dimDM:
		return func(i int) map[int]float64 { return s.eng.dmRow(i, now) }
	default:
		return func(i int) map[int]float64 { return s.eng.umRow(i) }
	}
}

// --- reads -------------------------------------------------------------------

// BuildRM computes RM = TM^n (Eq. 8); the power chain runs outside any
// lock.
func (s *Sharded) BuildRM(now time.Duration) (*sparse.CSR, error) {
	tm, err := s.TM(now)
	if err != nil {
		return nil, err
	}
	return tm.Pow(s.Config().Steps)
}

// Reputations returns row i of RM. Only the TM fetch synchronises; the
// walk runs against the immutable snapshot.
func (s *Sharded) Reputations(i int, now time.Duration) (map[int]float64, error) {
	if err := s.eng.checkPeer(i); err != nil {
		return nil, err
	}
	tm, err := s.TM(now)
	if err != nil {
		return nil, err
	}
	sp := s.obs.spanRepWalk()
	row, err := tm.RowVecPow(i, s.Config().Steps)
	sp.End()
	return row, err
}

// ReputationsFromTM runs the walk against a caller-held frozen matrix.
func (s *Sharded) ReputationsFromTM(tm *sparse.CSR, i int) (map[int]float64, error) {
	if err := s.eng.checkPeer(i); err != nil {
		return nil, err
	}
	return tm.RowVecPow(i, s.Config().Steps)
}

// Evaluation returns peer p's blended evaluation of f under the owner
// shard's lock.
func (s *Sharded) Evaluation(p int, f eval.FileID, now time.Duration) (float64, bool) {
	if s.eng.checkPeer(p) != nil {
		return 0, false
	}
	sh := &s.shards[s.shardOf[p]]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return s.eng.stores[p].Get(f, now)
}

// JudgeFile mirrors Concurrent.JudgeFile.
func (s *Sharded) JudgeFile(i int, owners []OwnerEvaluation, now time.Duration) (Judgement, error) {
	reps, err := s.Reputations(i, now)
	if err != nil {
		return Judgement{}, err
	}
	return s.eng.judgeWith(reps, owners)
}

// JudgeFileFromTM mirrors Concurrent.JudgeFileFromTM.
func (s *Sharded) JudgeFileFromTM(tm *sparse.CSR, i int, owners []OwnerEvaluation) (Judgement, error) {
	return s.eng.JudgeFileFromTM(tm, i, owners)
}

// CollectOwnerEvaluations reads the owners' published evaluations
// stop-the-world (owners may live on any shard).
func (s *Sharded) CollectOwnerEvaluations(f eval.FileID, owners []int, now time.Duration) []OwnerEvaluation {
	s.lockAll()
	defer s.unlockAll()
	return s.eng.CollectOwnerEvaluations(f, owners, now)
}

// ExportState deep-copies the full engine state stop-the-world.
func (s *Sharded) ExportState() *EngineState {
	s.lockAll()
	defer s.unlockAll()
	return s.eng.ExportState()
}

// --- per-shard snapshot state ------------------------------------------------

// ShardState is the serializable state of one shard's peers — the
// per-shard snapshot unit of journal.OpenSharded. N, K and Shard pin
// the population, shard count and shard index: a snapshot taken under
// one partitioning must not restore into another.
type ShardState struct {
	N     int         `json:"n"`
	K     int         `json:"k"`
	Shard int         `json:"shard"`
	Peers []PeerState `json:"peers"`
}

// PeerState is one peer's slice of the engine state, ascending by ID
// within a ShardState.
type PeerState struct {
	ID        int                         `json:"id"`
	Store     map[eval.FileID]eval.Record `json:"store,omitempty"`
	Downloads map[int][]DownloadState     `json:"downloads,omitempty"`
	UserTrust map[int]float64             `json:"user_trust,omitempty"`
	Blacklist []int                       `json:"blacklist,omitempty"`
}

// ExportShardState deep-copies shard si's peers under its data lock.
func (s *Sharded) ExportShardState(si int) (*ShardState, error) {
	if si < 0 || si >= s.k {
		return nil, fmt.Errorf("core: shard %d outside [0, %d)", si, s.k)
	}
	sh := &s.shards[si]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	full := s.eng // evidence reads below touch only owned peers
	st := &ShardState{N: s.eng.n, K: s.k, Shard: si}
	for _, p := range s.owned[si] {
		ps := PeerState{ID: p, Store: full.stores[p].Export()}
		if per := full.downloads[p]; len(per) > 0 {
			m := make(map[int][]DownloadState, len(per))
			for j, entries := range per {
				out := make([]DownloadState, len(entries))
				for k, d := range entries {
					out[k] = DownloadState{File: d.file, Size: d.size}
				}
				m[j] = out
			}
			ps.Downloads = m
		}
		if per := full.userTrust[p]; len(per) > 0 {
			m := make(map[int]float64, len(per))
			for j, v := range per {
				m[j] = v
			}
			ps.UserTrust = m
		}
		if per := full.blacklist[p]; len(per) > 0 {
			out := make([]int, 0, len(per))
			for j := range per {
				out = append(out, j)
			}
			sort.Ints(out)
			ps.Blacklist = out
		}
		st.Peers = append(st.Peers, ps)
	}
	return st, nil
}

// RestoreShard replaces shard si's peers' evidence with a snapshot,
// leaving every other shard untouched — the parallel-recovery path:
// each shard restores its snapshot and replays its own journal tail
// concurrently. Because restored evidence changes FM pairings of
// co-evaluators on any shard, every shard's dimensions are marked
// all-dirty.
func (s *Sharded) RestoreShard(si int, st *ShardState) error {
	if si < 0 || si >= s.k {
		return fmt.Errorf("core: shard %d outside [0, %d)", si, s.k)
	}
	if st == nil {
		return fmt.Errorf("core: nil shard state")
	}
	if st.N != s.eng.n || st.K != s.k || st.Shard != si {
		return fmt.Errorf("core: shard state (n=%d k=%d shard=%d) does not match engine (n=%d k=%d shard=%d)",
			st.N, st.K, st.Shard, s.eng.n, s.k, si)
	}
	cfg := s.eng.cfg
	sh := &s.shards[si]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, p := range s.owned[si] {
		store, err := eval.NewStore(cfg.Blend, cfg.Window)
		if err != nil {
			return err
		}
		s.eng.stores[p] = store
		s.eng.downloads[p] = nil
		s.eng.userTrust[p] = nil
		s.eng.blacklist[p] = nil
	}
	owns := s.ownsFunc(si)
	s.eng.evaluators.prune(owns, func(int, eval.FileID) bool { return true })
	for _, ps := range st.Peers {
		p := ps.ID
		if p < 0 || p >= s.eng.n || !owns(p) {
			return fmt.Errorf("core: peer %d in shard %d snapshot is not owned by it", p, si)
		}
		s.eng.stores[p].Import(ps.Store)
		for f := range ps.Store {
			s.eng.indexEvaluator(f, p)
		}
		if len(ps.Downloads) > 0 {
			m := make(map[int][]downloadEntry, len(ps.Downloads))
			for j, entries := range ps.Downloads {
				if j < 0 || j >= s.eng.n {
					return fmt.Errorf("core: download target %d outside [0, %d)", j, s.eng.n)
				}
				out := make([]downloadEntry, len(entries))
				for k, d := range entries {
					out[k] = downloadEntry{file: d.File, size: d.Size}
				}
				m[j] = out
			}
			s.eng.downloads[p] = m
		}
		if len(ps.UserTrust) > 0 {
			m := make(map[int]float64, len(ps.UserTrust))
			for j, v := range ps.UserTrust {
				if j < 0 || j >= s.eng.n {
					return fmt.Errorf("core: rating target %d outside [0, %d)", j, s.eng.n)
				}
				m[j] = v
			}
			s.eng.userTrust[p] = m
		}
		if len(ps.Blacklist) > 0 {
			m := make(map[int]struct{}, len(ps.Blacklist))
			for _, j := range ps.Blacklist {
				if j < 0 || j >= s.eng.n {
					return fmt.Errorf("core: blacklist target %d outside [0, %d)", j, s.eng.n)
				}
				m[j] = struct{}{}
			}
			s.eng.blacklist[p] = m
		}
	}
	for sj := range s.shards {
		other := &s.shards[sj]
		other.dirtyMu.Lock()
		for d := 0; d < 3; d++ {
			other.all[d] = true
			if len(other.dirty[d]) > 0 {
				other.dirty[d] = make(map[int]struct{})
			}
		}
		other.dirtyMu.Unlock()
	}
	s.version.Add(1)
	return nil
}
