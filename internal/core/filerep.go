package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"mdrep/internal/eval"
	"mdrep/internal/sparse"
)

// OwnerEvaluation is one owner's published evaluation of a file, as
// retrieved from the file's index peer (§4.1 step 3).
type OwnerEvaluation struct {
	// Owner is the peer index of the evaluator.
	Owner int
	// Value is the owner's published evaluation in [0,1].
	Value float64
}

// ErrNoReputation is returned when the requester has no reputation path to
// any of the file's evaluators, so Eq. (9) is undefined.
var ErrNoReputation = errors.New("core: no reputation path to any evaluator")

// FileReputation computes R_f for requester i over the evaluator set U
// (Eq. 9):
//
//	R_f = Σ_{j∈U} RM_ij·E_jf / Σ_{j∈U} RM_ij
//
// reps is row i of RM (from Reputations). Evaluators with zero reputation
// contribute nothing, so a clique of unknown peers cannot sway the score.
func FileReputation(reps map[int]float64, owners []OwnerEvaluation) (float64, error) {
	var num, den float64
	for _, oe := range owners {
		if oe.Value < 0 || oe.Value > 1 {
			return 0, fmt.Errorf("core: owner %d evaluation %v outside [0,1]", oe.Owner, oe.Value)
		}
		r := reps[oe.Owner]
		if r <= 0 {
			continue
		}
		num += r * oe.Value
		den += r
	}
	if den <= 0 {
		return 0, ErrNoReputation
	}
	return num / den, nil
}

// Judgement is the outcome of judging a file before download (§3.3).
type Judgement struct {
	// Reputation is R_f; meaningful only when Known.
	Reputation float64
	// Known reports whether any reputation-weighted evidence existed.
	Known bool
	// Fake reports Known && Reputation < threshold.
	Fake bool
}

// JudgeFile computes peer i's judgement of a file from the owners'
// published evaluations, using the engine's multi-trust reputations and
// fake threshold. A file with no reachable evidence is Unknown, not fake:
// the paper leaves the decision to a per-user threshold, and punishing
// absent evidence would lock new files out of the system.
func (e *Engine) JudgeFile(i int, owners []OwnerEvaluation, now time.Duration) (Judgement, error) {
	reps, err := e.Reputations(i, now)
	if err != nil {
		return Judgement{}, err
	}
	return e.judgeWith(reps, owners)
}

// JudgeFileFromTM is JudgeFile against a prebuilt TM, amortising matrix
// construction across many judgements.
func (e *Engine) JudgeFileFromTM(tm *sparse.CSR, i int, owners []OwnerEvaluation) (Judgement, error) {
	reps, err := tm.RowVecPow(i, e.cfg.Steps)
	if err != nil {
		return Judgement{}, err
	}
	return e.judgeWith(reps, owners)
}

func (e *Engine) judgeWith(reps map[int]float64, owners []OwnerEvaluation) (Judgement, error) {
	r, err := FileReputation(reps, owners)
	if errors.Is(err, ErrNoReputation) {
		return Judgement{}, nil
	}
	if err != nil {
		return Judgement{}, err
	}
	return Judgement{Reputation: r, Known: true, Fake: r < e.cfg.FakeThreshold}, nil
}

// CollectOwnerEvaluations gathers the live published evaluations of file f
// from a set of owner peers out of the engine's own stores — the
// simulation-side stand-in for retrieving EvaluationInfo records from the
// DHT index peer.
func (e *Engine) CollectOwnerEvaluations(f eval.FileID, owners []int, now time.Duration) []OwnerEvaluation {
	out := make([]OwnerEvaluation, 0, len(owners))
	for _, o := range owners {
		if e.checkPeer(o) != nil {
			continue
		}
		if v, ok := e.stores[o].Get(f, now); ok {
			out = append(out, OwnerEvaluation{Owner: o, Value: v})
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Owner < out[b].Owner })
	return out
}
