// Package core implements the paper's primary contribution: the
// multi-dimensional reputation system of §3. It builds the three one-step
// direct-trust matrices —
//
//	FM (file-based, Eq. 2–3): similarity of blended file evaluations,
//	DM (download-volume-based, Eq. 4–5): evaluation-weighted bytes fetched,
//	UM (user-based, Eq. 6): explicit user ratings / friends / blacklists,
//
// integrates them into the one-step trust matrix TM = α·FM + β·DM + γ·UM
// (Eq. 7), computes multi-trust reputations RM = TM^n (Eq. 8), derives
// per-file reputations R_f (Eq. 9) for fake-file identification, and
// provides the request-coverage analysis behind Figure 1.
package core

import (
	"errors"
	"fmt"
	"time"

	"mdrep/internal/eval"
)

// Config holds the system parameters of §3. Construct with DefaultConfig
// and override, then Validate.
type Config struct {
	// Alpha, Beta, Gamma weight FM, DM and UM in Eq. (7); they must sum
	// to 1.
	Alpha, Beta, Gamma float64
	// Blend holds η and ρ of Eq. (1).
	Blend eval.Blend
	// Steps is the multi-trust depth n of Eq. (8). The paper chooses
	// n = 1 for Maze once implicit evaluation densifies the one-step
	// matrix; sparse deployments need larger n (experiment E5).
	Steps int
	// Window is the evaluation retention interval of §4.3; zero keeps
	// evaluations forever.
	Window time.Duration
	// Retention maps retention time to implicit evaluations.
	Retention eval.RetentionModel
	// FakeThreshold is the local download threshold on R_f (§3.3): a
	// file whose reputation falls below it is judged fake.
	FakeThreshold float64
	// FriendTrust is the UT value assigned to friend-list entries (§3.1.3).
	FriendTrust float64
	// MaxEvaluatorsPerFile caps how many of a file's evaluators FM
	// construction pairs up (0 = unlimited). Popular files in a
	// Maze-scale deployment have tens of thousands of evaluators and
	// pairing them is quadratic; a deterministic sample preserves the
	// similarity estimate at bounded cost.
	MaxEvaluatorsPerFile int
}

// DefaultConfig returns the parameter set used across the experiments:
// file similarity dominates (it is the densest dimension), one-step
// multi-trust, a 30-day window matching the trace length, and a neutral
// 0.5 fake threshold.
func DefaultConfig() Config {
	return Config{
		Alpha:         0.5,
		Beta:          0.3,
		Gamma:         0.2,
		Blend:         eval.DefaultBlend(),
		Steps:         1,
		Window:        30 * 24 * time.Hour,
		Retention:     eval.DefaultRetentionModel(),
		FakeThreshold: 0.5,
		FriendTrust:   1.0,
		// Unlimited by default; the large-scale simulations set a cap.
		MaxEvaluatorsPerFile: 0,
	}
}

// Validate checks all parameters.
func (c Config) Validate() error {
	if c.Alpha < 0 || c.Beta < 0 || c.Gamma < 0 {
		return errors.New("core: negative dimension weight")
	}
	if s := c.Alpha + c.Beta + c.Gamma; s < 1-1e-9 || s > 1+1e-9 {
		return fmt.Errorf("core: dimension weights sum to %v, want 1", s)
	}
	if err := c.Blend.Validate(); err != nil {
		return err
	}
	if c.Steps < 1 {
		return fmt.Errorf("core: multi-trust steps %d, want >= 1", c.Steps)
	}
	if c.Window < 0 {
		return errors.New("core: negative window")
	}
	if c.FakeThreshold < 0 || c.FakeThreshold > 1 {
		return errors.New("core: fake threshold outside [0,1]")
	}
	if c.FriendTrust < 0 || c.FriendTrust > 1 {
		return errors.New("core: friend trust outside [0,1]")
	}
	if c.MaxEvaluatorsPerFile < 0 {
		return errors.New("core: negative evaluator cap")
	}
	return nil
}
