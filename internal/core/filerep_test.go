package core

import (
	"errors"
	"math"
	"testing"
	"time"

	"mdrep/internal/eval"
)

func TestFileReputationEquation9(t *testing.T) {
	reps := map[int]float64{1: 0.6, 2: 0.2, 3: 0.2}
	owners := []OwnerEvaluation{
		{Owner: 1, Value: 1.0},
		{Owner: 2, Value: 0.5},
		{Owner: 3, Value: 0.0},
	}
	got, err := FileReputation(reps, owners)
	if err != nil {
		t.Fatal(err)
	}
	want := (0.6*1.0 + 0.2*0.5 + 0.2*0.0) / (0.6 + 0.2 + 0.2)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("R_f = %v, want %v", got, want)
	}
}

func TestFileReputationIgnoresUnknownEvaluators(t *testing.T) {
	reps := map[int]float64{1: 0.5}
	owners := []OwnerEvaluation{
		{Owner: 1, Value: 1.0},
		{Owner: 9, Value: 0.0}, // no reputation path; must not drag R_f down
	}
	got, err := FileReputation(reps, owners)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("R_f = %v, want 1 (zero-reputation evaluator ignored)", got)
	}
}

func TestFileReputationNoPath(t *testing.T) {
	_, err := FileReputation(map[int]float64{}, []OwnerEvaluation{{Owner: 1, Value: 1}})
	if !errors.Is(err, ErrNoReputation) {
		t.Fatalf("err = %v, want ErrNoReputation", err)
	}
}

func TestFileReputationRejectsOutOfRange(t *testing.T) {
	reps := map[int]float64{1: 1}
	if _, err := FileReputation(reps, []OwnerEvaluation{{Owner: 1, Value: 1.2}}); err == nil {
		t.Fatal("out-of-range evaluation accepted")
	}
}

// buildJudgingEngine wires 4 peers: requester 0 trusts honest peer 1
// strongly (file similarity) while liar peer 2 has no similarity with 0.
func buildJudgingEngine(t *testing.T) *Engine {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Alpha, cfg.Beta, cfg.Gamma = 1, 0, 0
	cfg.Blend = eval.Blend{Eta: 0, Rho: 1}
	e := mustEngine(t, 4, cfg)
	mustVote := func(p int, f eval.FileID, v float64) {
		t.Helper()
		if err := e.Vote(p, f, v, 0); err != nil {
			t.Fatal(err)
		}
	}
	// 0 and 1 agree on history; 0 and 2 disagree completely.
	mustVote(0, "h1", 1.0)
	mustVote(1, "h1", 1.0)
	mustVote(0, "h2", 0.9)
	mustVote(1, "h2", 0.9)
	mustVote(2, "h1", 0.0)
	return e
}

func TestJudgeFileTrustsSimilarPeer(t *testing.T) {
	e := buildJudgingEngine(t)
	// Honest peer 1 says the file is fake (0.1); liar peer 2 says it is
	// great (1.0). Peer 0's multi-trust weights 1 far above 2.
	owners := []OwnerEvaluation{
		{Owner: 1, Value: 0.1},
		{Owner: 2, Value: 1.0},
	}
	j, err := e.JudgeFile(0, owners, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !j.Known {
		t.Fatal("judgement unknown despite reputation path")
	}
	if !j.Fake {
		t.Fatalf("fake file not identified: R_f = %v", j.Reputation)
	}
	if j.Reputation > 0.3 {
		t.Fatalf("R_f = %v, want dominated by trusted evaluator's 0.1", j.Reputation)
	}
}

func TestJudgeFileUnknownWithoutEvidence(t *testing.T) {
	e := buildJudgingEngine(t)
	// Evaluations only from peer 3, unknown to peer 0.
	j, err := e.JudgeFile(0, []OwnerEvaluation{{Owner: 3, Value: 0.9}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if j.Known || j.Fake {
		t.Fatalf("judgement without evidence: %+v", j)
	}
}

func TestJudgeFileFromTMMatchesJudgeFile(t *testing.T) {
	e := buildJudgingEngine(t)
	owners := []OwnerEvaluation{{Owner: 1, Value: 0.2}, {Owner: 2, Value: 0.9}}
	direct, err := e.JudgeFile(0, owners, 0)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := e.BuildTM(0)
	if err != nil {
		t.Fatal(err)
	}
	viaTM, err := e.JudgeFileFromTM(tm, 0, owners)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(direct.Reputation-viaTM.Reputation) > 1e-12 || direct.Fake != viaTM.Fake {
		t.Fatalf("JudgeFileFromTM diverges: %+v vs %+v", viaTM, direct)
	}
}

func TestCollectOwnerEvaluations(t *testing.T) {
	e := buildJudgingEngine(t)
	if err := e.Vote(3, "h1", 0.5, 0); err != nil {
		t.Fatal(err)
	}
	got := e.CollectOwnerEvaluations("h1", []int{2, 0, 3, 99}, 0)
	if len(got) != 3 {
		t.Fatalf("collected %d evaluations, want 3", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Owner >= got[i].Owner {
			t.Fatal("owner evaluations not sorted")
		}
	}
}

func TestCollectOwnerEvaluationsHonoursWindow(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Window = time.Hour
	e := mustEngine(t, 2, cfg)
	if err := e.Vote(0, "f", 0.9, 0); err != nil {
		t.Fatal(err)
	}
	if got := e.CollectOwnerEvaluations("f", []int{0}, 2*time.Hour); len(got) != 0 {
		t.Fatalf("expired evaluation collected: %+v", got)
	}
}
