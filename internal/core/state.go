package core

import (
	"fmt"
	"sort"

	"mdrep/internal/eval"
)

// EngineState is the full serializable state of an Engine — the snapshot
// half of the durable-state subsystem (internal/journal). It captures
// everything ApplyEvent can mutate; configuration is deliberately not
// part of it (the owner supplies the Config at restore time, exactly as
// at construction time). The inverted evaluator index is not stored
// either: it is derivable from the stores and rebuilt on restore.
type EngineState struct {
	// N is the population size; restore fails on mismatch rather than
	// silently renumbering peers.
	N int `json:"n"`
	// Stores holds each peer's raw evaluation records, including expired
	// entries not yet compacted — a snapshot is the state as-is.
	Stores []map[eval.FileID]eval.Record `json:"stores"`
	// Downloads mirrors Engine.downloads; entry order within a slice is
	// the append (event) order and must be preserved.
	Downloads []map[int][]DownloadState `json:"downloads"`
	// UserTrust mirrors Engine.userTrust.
	UserTrust []map[int]float64 `json:"user_trust"`
	// Blacklist holds each peer's banned targets, sorted.
	Blacklist [][]int `json:"blacklist"`
}

// DownloadState is one serialized download ledger entry.
type DownloadState struct {
	File eval.FileID `json:"file"`
	Size int64       `json:"size"`
}

// ExportState returns a deep copy of the engine's state.
func (e *Engine) ExportState() *EngineState {
	st := &EngineState{
		N:         e.n,
		Stores:    make([]map[eval.FileID]eval.Record, e.n),
		Downloads: make([]map[int][]DownloadState, e.n),
		UserTrust: make([]map[int]float64, e.n),
		Blacklist: make([][]int, e.n),
	}
	for i, s := range e.stores {
		st.Stores[i] = s.Export()
	}
	for i, per := range e.downloads {
		if per == nil {
			continue
		}
		m := make(map[int][]DownloadState, len(per))
		for j, entries := range per {
			out := make([]DownloadState, len(entries))
			for k, d := range entries {
				out[k] = DownloadState{File: d.file, Size: d.size}
			}
			m[j] = out
		}
		st.Downloads[i] = m
	}
	for i, per := range e.userTrust {
		if per == nil {
			continue
		}
		m := make(map[int]float64, len(per))
		for j, v := range per {
			m[j] = v
		}
		st.UserTrust[i] = m
	}
	for i, per := range e.blacklist {
		if per == nil {
			continue
		}
		out := make([]int, 0, len(per))
		for j := range per {
			out = append(out, j)
		}
		sort.Ints(out)
		st.Blacklist[i] = out
	}
	return st
}

// NewEngineFromState rebuilds an engine from an exported state and the
// owner's configuration. The state is deep-copied; mutating it afterwards
// does not affect the engine.
func NewEngineFromState(st *EngineState, cfg Config) (*Engine, error) {
	if st == nil {
		return nil, fmt.Errorf("core: nil engine state")
	}
	e, err := NewEngine(st.N, cfg)
	if err != nil {
		return nil, err
	}
	if len(st.Stores) != st.N || len(st.Downloads) != st.N ||
		len(st.UserTrust) != st.N || len(st.Blacklist) != st.N {
		return nil, fmt.Errorf("core: engine state slices disagree with population %d", st.N)
	}
	for i, records := range st.Stores {
		e.stores[i].Import(records)
		for f := range records {
			e.indexEvaluator(f, i)
		}
	}
	for i, per := range st.Downloads {
		if len(per) == 0 {
			continue
		}
		m := make(map[int][]downloadEntry, len(per))
		for j, entries := range per {
			if j < 0 || j >= st.N {
				return nil, fmt.Errorf("core: download target %d outside [0, %d)", j, st.N)
			}
			out := make([]downloadEntry, len(entries))
			for k, d := range entries {
				out[k] = downloadEntry{file: d.File, size: d.Size}
			}
			m[j] = out
		}
		e.downloads[i] = m
	}
	for i, per := range st.UserTrust {
		if len(per) == 0 {
			continue
		}
		m := make(map[int]float64, len(per))
		for j, v := range per {
			if j < 0 || j >= st.N {
				return nil, fmt.Errorf("core: rating target %d outside [0, %d)", j, st.N)
			}
			m[j] = v
		}
		e.userTrust[i] = m
	}
	for i, per := range st.Blacklist {
		if len(per) == 0 {
			continue
		}
		m := make(map[int]struct{}, len(per))
		for _, j := range per {
			if j < 0 || j >= st.N {
				return nil, fmt.Errorf("core: blacklist target %d outside [0, %d)", j, st.N)
			}
			m[j] = struct{}{}
		}
		e.blacklist[i] = m
	}
	return e, nil
}
