package metrics

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// TestEscapeLabelValueEdgeCases pins the escaping table the Prometheus
// text format requires: backslash, double quote and newline escaped,
// everything else (including multi-byte runes) passed through, and the
// no-escape fast path returning the value unchanged.
func TestEscapeLabelValueEdgeCases(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", ""},
		{"plain", "plain"},
		{`\`, `\\`},
		{`"`, `\"`},
		{"\n", `\n`},
		{`a"b\c` + "\n" + "d", `a\"b\\c\nd`},
		{`\\`, `\\\\`},
		{"shard=0,dim=fm", "shard=0,dim=fm"},
		{"héllo→∞", "héllo→∞"},
		{"tab\tstays", "tab\tstays"},
	}
	for _, c := range cases {
		if got := escapeLabelValue(c.in); got != c.want {
			t.Errorf("escapeLabelValue(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestDumpEscapesLabelValues: the one-shot report shares the rendered
// label sets with the Prometheus path, so hostile values must arrive
// escaped there too, for every instrument kind.
func TestDumpEscapesLabelValues(t *testing.T) {
	r := NewRegistry()
	r.Counter("evil_total", "path", "a\"b").Inc()
	r.Gauge("evil_gauge", "path", `c\d`).Set(2)
	r.Histogram("evil_seconds", []float64{1}, "path", "e\nf").Observe(0.5)
	var b strings.Builder
	if err := r.Dump(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, frag := range []string{
		`evil_total{path="a\"b"} = 1`,
		`evil_gauge{path="c\\d"} = 2`,
		`evil_seconds{path="e\nf"}: count=1`,
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("Dump output missing %q:\n%s", frag, out)
		}
	}
	if strings.Contains(out, "e\nf") {
		t.Errorf("raw newline leaked into the report:\n%s", out)
	}
}

// TestPrometheusLeLabelAfterEscapedLabels: the histogram exposition
// splices le into an already-rendered label set; the splice must keep
// the escaped labels intact and escape the le value itself.
func TestPrometheusLeLabelAfterEscapedLabels(t *testing.T) {
	r := NewRegistry()
	r.Histogram("lat_seconds", []float64{0.5}, "op", `get"x`).Observe(0.1)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, frag := range []string{
		`lat_seconds_bucket{op="get\"x",le="0.5"} 1`,
		`lat_seconds_bucket{op="get\"x",le="+Inf"} 1`,
		`lat_seconds_count{op="get\"x"} 1`,
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("exposition missing %q:\n%s", frag, out)
		}
	}
}

// TestWriteCSVMidRowGap: a bucket missing from one series in the middle
// of the range must render as an empty field in place, not shift later
// columns.
func TestWriteCSVMidRowGap(t *testing.T) {
	a, err := NewSeries("a", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSeries("b", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	a.Observe(0, true)
	a.Observe(150*time.Minute, true) // bucket 3; bucket 2 stays empty
	b.Observe(0, true)
	b.Observe(90*time.Minute, false) // bucket 2
	var sb strings.Builder
	if err := WriteCSV(&sb, a, b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("CSV lines: %q", lines)
	}
	if lines[2] != "2.00,,0.0000" {
		t.Errorf("mid-row gap rendered as %q, want %q", lines[2], "2.00,,0.0000")
	}
	if lines[3] != "3.00,1.0000," {
		t.Errorf("trailing gap rendered as %q, want %q", lines[3], "3.00,1.0000,")
	}
}

// failAfter errors once n bytes-writes have happened, to drive the
// exporters' error paths.
type failAfter struct{ n int }

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("sink full")
	}
	f.n--
	return len(p), nil
}

// TestExportersPropagateWriterErrors: both exporters must surface the
// writer's error instead of silently truncating the report.
func TestExportersPropagateWriterErrors(t *testing.T) {
	s, err := NewSeries("a", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	s.Observe(0, true)
	if err := WriteCSV(&failAfter{}, s); err == nil {
		t.Error("WriteCSV swallowed the header write error")
	}
	if err := WriteCSV(&failAfter{n: 1}, s); err == nil {
		t.Error("WriteCSV swallowed a row write error")
	}

	r := NewRegistry()
	r.Counter("x_total").Inc()
	if err := r.Dump(&failAfter{}); err == nil {
		t.Error("Dump swallowed the header write error")
	}
	if err := r.Dump(&failAfter{n: 1}); err == nil {
		t.Error("Dump swallowed a sample write error")
	}
	if err := r.WritePrometheus(&failAfter{}); err == nil {
		t.Error("WritePrometheus swallowed a write error")
	}
}

// TestDumpEmptyRegistry pins the explicit placeholder over zero output.
func TestDumpEmptyRegistry(t *testing.T) {
	var b strings.Builder
	if err := NewRegistry().Dump(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "(none)") {
		t.Errorf("empty registry dump = %q", b.String())
	}
}
