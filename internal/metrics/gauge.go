package metrics

import (
	"math"
	"sync/atomic"
)

// Gauge is a concurrency-safe float64 value that can go up and down —
// queue depths, last-seen sizes, current ring position. The float is
// stored as its IEEE-754 bit pattern in a uint64 so reads and writes are
// single atomic operations.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the gauge by delta (negative deltas decrement). The
// CAS loop makes concurrent Adds linearisable without a lock.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Load returns the current value.
func (g *Gauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }
