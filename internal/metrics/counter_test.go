package metrics

import (
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != 8000 {
		t.Fatalf("Load() = %d, want 8000", got)
	}
	c.Add(5)
	if got := c.Load(); got != 8005 {
		t.Fatalf("after Add(5): %d", got)
	}
	c.Reset()
	if got := c.Load(); got != 0 {
		t.Fatalf("after Reset(): %d", got)
	}
}

func TestFormatCountersStable(t *testing.T) {
	m := map[string]uint64{"retries": 7, "drops": 3, "fallbacks": 1}
	want := "drops=3 fallbacks=1 retries=7"
	for i := 0; i < 4; i++ {
		if got := FormatCounters(m); got != want {
			t.Fatalf("FormatCounters = %q, want %q", got, want)
		}
	}
	if got := FormatCounters(nil); got != "" {
		t.Fatalf("FormatCounters(nil) = %q", got)
	}
}
