// Package metrics provides the measurement plumbing of the benchmark
// harness: time-bucketed series, streaming counters and summaries, CSV
// export, and ASCII charts for terminal output of the reproduced figures.
package metrics

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// Series is a time-bucketed ratio series (e.g. fake-download ratio per
// day, request coverage per bucket).
type Series struct {
	name      string
	bucketLen time.Duration
	num       []float64
	den       []float64
}

// NewSeries builds a series with the given bucket length.
func NewSeries(name string, bucketLen time.Duration) (*Series, error) {
	if bucketLen <= 0 {
		return nil, errors.New("metrics: non-positive bucket length")
	}
	return &Series{name: name, bucketLen: bucketLen}, nil
}

// Name returns the series name.
func (s *Series) Name() string { return s.name }

// Observe adds a denominator event at time t, counting toward the
// numerator when hit is true.
func (s *Series) Observe(t time.Duration, hit bool) {
	b := int(t / s.bucketLen)
	if b < 0 {
		b = 0
	}
	for len(s.num) <= b {
		s.num = append(s.num, 0)
		s.den = append(s.den, 0)
	}
	s.den[b]++
	if hit {
		s.num[b]++
	}
}

// Add accumulates an arbitrary numerator/denominator pair at time t (for
// means rather than ratios of counts).
func (s *Series) Add(t time.Duration, value float64) {
	b := int(t / s.bucketLen)
	if b < 0 {
		b = 0
	}
	for len(s.num) <= b {
		s.num = append(s.num, 0)
		s.den = append(s.den, 0)
	}
	s.den[b]++
	s.num[b] += value
}

// Len returns the number of buckets.
func (s *Series) Len() int { return len(s.num) }

// At returns the ratio (or mean) of bucket b; empty buckets are NaN.
func (s *Series) At(b int) float64 {
	if b < 0 || b >= len(s.num) || s.den[b] == 0 {
		return math.NaN()
	}
	return s.num[b] / s.den[b]
}

// Points returns (bucket end time, value) pairs, skipping empty buckets.
func (s *Series) Points() []Point {
	out := make([]Point, 0, len(s.num))
	for b := range s.num {
		if s.den[b] == 0 {
			continue
		}
		out = append(out, Point{Time: s.bucketLen * time.Duration(b+1), Value: s.num[b] / s.den[b]})
	}
	return out
}

// Overall returns the ratio across all buckets.
func (s *Series) Overall() float64 {
	var n, d float64
	for b := range s.num {
		n += s.num[b]
		d += s.den[b]
	}
	if d == 0 {
		return math.NaN()
	}
	return n / d
}

// Point is one series sample.
type Point struct {
	Time  time.Duration
	Value float64
}

// Summary accumulates streaming scalar observations.
type Summary struct {
	values []float64
	sum    float64
}

// Observe adds a value.
func (s *Summary) Observe(v float64) {
	s.values = append(s.values, v)
	s.sum += v
}

// Count returns the number of observations.
func (s *Summary) Count() int { return len(s.values) }

// Mean returns the average (NaN when empty).
func (s *Summary) Mean() float64 {
	if len(s.values) == 0 {
		return math.NaN()
	}
	return s.sum / float64(len(s.values))
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) by nearest rank; NaN when
// empty.
func (s *Summary) Quantile(q float64) float64 {
	if len(s.values) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(s.values))
	copy(sorted, s.values)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// Max returns the maximum (NaN when empty).
func (s *Summary) Max() float64 { return s.Quantile(1) }

// WriteCSV writes the named series side by side, one row per bucket, using
// the union of bucket indices. Missing values render empty.
func WriteCSV(w io.Writer, series ...*Series) error {
	if len(series) == 0 {
		return errors.New("metrics: no series")
	}
	header := make([]string, 0, len(series)+1)
	header = append(header, "time_hours")
	maxLen := 0
	for _, s := range series {
		header = append(header, s.name)
		if s.Len() > maxLen {
			maxLen = s.Len()
		}
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	bucketLen := series[0].bucketLen
	for b := 0; b < maxLen; b++ {
		row := make([]string, 0, len(series)+1)
		row = append(row, fmt.Sprintf("%.2f", (time.Duration(b+1)*bucketLen).Hours()))
		for _, s := range series {
			v := s.At(b)
			if math.IsNaN(v) {
				row = append(row, "")
			} else {
				row = append(row, fmt.Sprintf("%.4f", v))
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// AsciiChart renders series as a fixed-size terminal chart with one symbol
// per series, y in [0, 1] by default or scaled to the data maximum.
func AsciiChart(title string, width, height int, series ...*Series) string {
	if width < 10 {
		width = 10
	}
	if height < 4 {
		height = 4
	}
	symbols := []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}
	maxVal := 1.0
	maxBuckets := 0
	for _, s := range series {
		for _, p := range s.Points() {
			if p.Value > maxVal {
				maxVal = p.Value
			}
		}
		if s.Len() > maxBuckets {
			maxBuckets = s.Len()
		}
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		sym := symbols[si%len(symbols)]
		for b := 0; b < s.Len(); b++ {
			v := s.At(b)
			if math.IsNaN(v) {
				continue
			}
			col := 0
			if maxBuckets > 1 {
				col = b * (width - 1) / (maxBuckets - 1)
			}
			row := height - 1 - int(v/maxVal*float64(height-1)+0.5)
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][col] = sym
		}
	}
	var sb strings.Builder
	sb.WriteString(title)
	sb.WriteByte('\n')
	for r, line := range grid {
		yVal := maxVal * float64(height-1-r) / float64(height-1)
		fmt.Fprintf(&sb, "%5.2f |%s|\n", yVal, string(line))
	}
	sb.WriteString("      +" + strings.Repeat("-", width) + "+\n")
	legend := make([]string, 0, len(series))
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c %s", symbols[si%len(symbols)], s.name))
	}
	sb.WriteString("      " + strings.Join(legend, "   ") + "\n")
	return sb.String()
}
