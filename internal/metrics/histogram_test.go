package metrics

import (
	"math"
	"sync"
	"testing"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	// Prometheus `le` semantics: a value equal to a bound lands in that
	// bound's bucket; above the last bound goes to +Inf.
	cases := []struct {
		v      float64
		bucket int
	}{
		{0.5, 0},
		{1, 0}, // exactly on the first bound
		{1.0001, 1},
		{2, 1}, // exactly on a middle bound
		{4, 2}, // exactly on the last finite bound
		{4.0001, 3},
		{1e12, 3}, // deep overflow
	}
	for _, c := range cases {
		h.Observe(c.v)
	}
	want := []uint64{2, 2, 1, 2}
	for i := range want {
		if got := h.counts[i].Load(); got != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, got, want[i])
		}
	}
	if h.Count() != uint64(len(cases)) {
		t.Errorf("count = %d, want %d", h.Count(), len(cases))
	}
	var sum float64
	for _, c := range cases {
		sum += c.v
	}
	if h.Sum() != sum {
		t.Errorf("sum = %v, want %v", h.Sum(), sum)
	}
}

func TestHistogramInvalidBoundsPanic(t *testing.T) {
	assertPanics(t, "empty bounds", func() { newHistogram(nil) })
	assertPanics(t, "descending bounds", func() { newHistogram([]float64{2, 1}) })
	assertPanics(t, "equal bounds", func() { newHistogram([]float64{1, 1}) })
	assertPanics(t, "+Inf bound", func() { newHistogram([]float64{1, math.Inf(1)}) })
	assertPanics(t, "NaN bound", func() { newHistogram([]float64{math.NaN()}) })
}

// TestHistogramConcurrentTotals runs under -race via `make obs`: total
// count and per-bucket counts must add up exactly with many writers.
func TestHistogramConcurrentTotals(t *testing.T) {
	h := newHistogram([]float64{0.25, 0.5, 0.75})
	const writers, perWriter = 8, 5000
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(float64(i%4) * 0.25) // 0, .25, .5, .75: one per bucket... and 0 shares bucket 0
			}
		}(g)
	}
	wg.Wait()
	const total = writers * perWriter
	if h.Count() != total {
		t.Fatalf("count = %d, want %d", h.Count(), total)
	}
	var bucketSum uint64
	for i := range h.counts {
		bucketSum += h.counts[i].Load()
	}
	if bucketSum != total {
		t.Fatalf("bucket sum = %d, want %d", bucketSum, total)
	}
	// 0 and 0.25 both land in bucket 0; 0.5 in 1; 0.75 in 2; +Inf empty.
	wantBuckets := []uint64{total / 2, total / 4, total / 4, 0}
	for i, w := range wantBuckets {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
	wantSum := float64(writers) * (perWriter / 4) * (0 + 0.25 + 0.5 + 0.75)
	if math.Abs(h.Sum()-wantSum) > 1e-6 {
		t.Errorf("sum = %v, want %v", h.Sum(), wantSum)
	}
}

// TestHistogramQuantileSanity checks the interpolated estimate against a
// known uniform distribution: 10k observations spread evenly over (0,1]
// with bounds every 0.1 must put the q-quantile within one bucket width
// of q.
func TestHistogramQuantileSanity(t *testing.T) {
	bounds := make([]float64, 10)
	for i := range bounds {
		bounds[i] = float64(i+1) / 10
	}
	h := newHistogram(bounds)
	const n = 10000
	for i := 1; i <= n; i++ {
		h.Observe(float64(i) / n)
	}
	for _, q := range []float64{0.1, 0.25, 0.5, 0.9, 0.99} {
		got := h.Quantile(q)
		if math.Abs(got-q) > 0.1 {
			t.Errorf("Quantile(%v) = %v, want within 0.1", q, got)
		}
	}
	if got := h.Quantile(1); got != 1 {
		t.Errorf("Quantile(1) = %v, want 1", got)
	}
	if !math.IsNaN(newHistogram(bounds).Quantile(0.5)) {
		t.Error("Quantile on empty histogram should be NaN")
	}
}

func TestHistogramQuantileOverflowClamps(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	for i := 0; i < 100; i++ {
		h.Observe(50) // all in +Inf bucket
	}
	if got := h.Quantile(0.5); got != 2 {
		t.Errorf("overflow quantile = %v, want clamp to last bound 2", got)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
	assertPanics(t, "bad factor", func() { ExpBuckets(1, 1, 3) })
}
