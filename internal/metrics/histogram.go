package metrics

import (
	"math"
	"sync/atomic"
)

// Histogram counts observations into fixed, ascending buckets with
// Prometheus `le` (less-or-equal) semantics: an observation lands in the
// first bucket whose upper bound is >= the value, and anything above the
// last bound lands in the implicit +Inf overflow bucket. Observe is
// lock-free and allocation-free: bucket counts are atomic uint64s and
// the running sum is a float64 CAS-updated through its bit pattern, so
// the hot paths of the engine and the DHT can observe on every
// operation.
//
// Bucket bounds are fixed at construction. The registry guarantees every
// histogram in a family shares the same bounds, so exported series are
// aggregatable.
type Histogram struct {
	bounds []float64       // ascending upper bounds, excluding +Inf
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	total  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

// newHistogram validates bounds (finite, strictly ascending, non-empty)
// and builds the histogram. The registry copies bounds before calling.
func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("metrics: histogram needs at least one bucket bound")
	}
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic("metrics: histogram bounds must be finite (+Inf bucket is implicit)")
		}
		if i > 0 && b <= bounds[i-1] {
			panic("metrics: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value.
//
//mdrep:hotpath
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// HistogramSnapshot is a consistent-enough point-in-time copy for export:
// per-bucket counts (last entry is +Inf), total, and sum. Concurrent
// observers may race individual fields, which Prometheus scrapes
// tolerate; tests quiesce writers before snapshotting.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []uint64
	Count  uint64
	Sum    float64
}

// Snapshot copies the histogram state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Count:  h.total.Load(),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// within the bucket that holds the target rank, the same estimate
// Prometheus's histogram_quantile computes. Values in the +Inf bucket
// clamp to the last finite bound. Returns NaN when empty.
func (h *Histogram) Quantile(q float64) float64 {
	s := h.Snapshot()
	if s.Count == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	return snapshotQuantile(&s, q)
}

// ExpBuckets returns n strictly ascending bounds starting at start and
// multiplying by factor — the standard shape for latency and size
// distributions.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("metrics: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DurationBuckets covers 10µs–80s in powers of two, a sensible default
// for RPC and build latencies measured in seconds.
var DurationBuckets = ExpBuckets(10e-6, 2, 23)

// SizeBuckets covers 64B–2GiB in powers of four, for payload and
// snapshot sizes measured in bytes.
var SizeBuckets = ExpBuckets(64, 4, 13)
