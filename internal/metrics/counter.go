package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// Counter is a monotonically increasing, concurrency-safe event counter.
// The resilience layer threads counters through its decorators (retries,
// injected drops, local-view fallbacks) so tests and operators can assert
// on what the transport actually did, not just its end result.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
//
//mdrep:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
//
//mdrep:hotpath
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.v.Store(0) }

// FormatCounters renders a name→count map as a stable, sorted one-line
// summary ("drops=3 retries=7"), for logs and test failure messages.
func FormatCounters(counts map[string]uint64) string {
	names := make([]string, 0, len(counts))
	for name := range counts {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, name := range names {
		parts = append(parts, fmt.Sprintf("%s=%d", name, counts[name]))
	}
	return strings.Join(parts, " ")
}
