package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Registry is the process-wide metrics namespace: named, optionally
// labeled counters, gauges, and histograms. Registration (Counter /
// Gauge / Histogram) takes a mutex and may allocate; the returned
// instruments are lock-free, so hot paths register once at construction
// and hold the pointer. Lookups are get-or-create: the same
// (name, labels) always returns the same instrument, which is what makes
// several RetryClients or chaos injectors share one exported series.
//
// Exports (Snapshot, WritePrometheus, Dump, ExpvarMap) order series by
// name then by canonically sorted labels, so output is byte-stable for
// tests regardless of registration order.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry    // canonical id -> instrument
	kinds   map[string]kind      // family name -> kind
	bounds  map[string][]float64 // family name -> histogram bounds
}

type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

type entry struct {
	name    string
	labels  string // canonical `{k="v",...}` rendering, "" when unlabeled
	kind    kind
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		entries: make(map[string]*entry),
		kinds:   make(map[string]kind),
		bounds:  make(map[string][]float64),
	}
}

// Counter returns the counter for name with the given label pairs
// ("key", "value", ...), creating it on first use. Panics on an invalid
// name, odd label list, or a name already registered as another kind —
// all programmer errors.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	e := r.lookup(name, kindCounter, nil, labels)
	return e.counter
}

// Gauge returns the gauge for name with the given label pairs.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	e := r.lookup(name, kindGauge, nil, labels)
	return e.gauge
}

// Histogram returns the histogram for name with the given bucket bounds
// and label pairs. Every histogram of one family must be created with
// identical bounds so the exported series aggregate.
func (r *Registry) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	e := r.lookup(name, kindHistogram, bounds, labels)
	return e.hist
}

func (r *Registry) lookup(name string, k kind, histBounds []float64, labels []string) *entry {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	ls := renderLabels(name, labels)
	id := name + ls

	r.mu.Lock()
	defer r.mu.Unlock()
	if have, ok := r.kinds[name]; ok && have != k {
		panic(fmt.Sprintf("metrics: %s already registered as %s, requested as %s", name, have, k))
	}
	if e, ok := r.entries[id]; ok {
		if k == kindHistogram && !equalBounds(r.bounds[name], histBounds) {
			panic(fmt.Sprintf("metrics: histogram %s re-registered with different bounds", name))
		}
		return e
	}
	e := &entry{name: name, labels: ls, kind: k}
	switch k {
	case kindCounter:
		e.counter = &Counter{}
	case kindGauge:
		e.gauge = &Gauge{}
	case kindHistogram:
		if prev, ok := r.bounds[name]; ok {
			if !equalBounds(prev, histBounds) {
				panic(fmt.Sprintf("metrics: histogram %s re-registered with different bounds", name))
			}
			histBounds = prev
		} else {
			histBounds = append([]float64(nil), histBounds...)
			r.bounds[name] = histBounds
		}
		e.hist = newHistogram(histBounds)
	}
	r.kinds[name] = k
	r.entries[id] = e
	return e
}

func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// validName accepts the Prometheus metric-name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabelKey(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// renderLabels canonicalises label pairs: keys sorted, values escaped,
// rendered as {k="v",k2="v2"}. Empty labels render as "".
func renderLabels(name string, labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("metrics: %s: odd label list (want key, value pairs)", name))
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		if !validLabelKey(labels[i]) {
			panic(fmt.Sprintf("metrics: %s: invalid label key %q", name, labels[i]))
		}
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	for i := 1; i < len(pairs); i++ {
		if pairs[i].k == pairs[i-1].k {
			panic(fmt.Sprintf("metrics: %s: duplicate label key %q", name, pairs[i].k))
		}
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// Sample is one exported series in a Snapshot.
type Sample struct {
	Name   string
	Labels string // canonical rendering, "" when unlabeled
	Kind   string // "counter", "gauge", "histogram"

	Counter uint64             // kind == counter
	Gauge   float64            // kind == gauge
	Hist    *HistogramSnapshot // kind == histogram
}

// Snapshot returns every registered series sorted by name then labels.
func (r *Registry) Snapshot() []Sample {
	r.mu.Lock()
	entries := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	r.mu.Unlock()

	sort.Slice(entries, func(i, j int) bool {
		if entries[i].name != entries[j].name {
			return entries[i].name < entries[j].name
		}
		return entries[i].labels < entries[j].labels
	})
	out := make([]Sample, 0, len(entries))
	for _, e := range entries {
		s := Sample{Name: e.name, Labels: e.labels, Kind: e.kind.String()}
		switch e.kind {
		case kindCounter:
			s.Counter = e.counter.Load()
		case kindGauge:
			s.Gauge = e.gauge.Load()
		case kindHistogram:
			hs := e.hist.Snapshot()
			s.Hist = &hs
		}
		out = append(out, s)
	}
	return out
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): one `# TYPE` line per family, histograms
// expanded into cumulative `_bucket{le=...}`, `_sum`, and `_count`
// series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	samples := r.Snapshot()
	var lastFamily string
	for _, s := range samples {
		if s.Name != lastFamily {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, s.Kind); err != nil {
				return err
			}
			lastFamily = s.Name
		}
		switch s.Kind {
		case "counter":
			if _, err := fmt.Fprintf(w, "%s%s %d\n", s.Name, s.Labels, s.Counter); err != nil {
				return err
			}
		case "gauge":
			if _, err := fmt.Fprintf(w, "%s%s %s\n", s.Name, s.Labels, formatFloat(s.Gauge)); err != nil {
				return err
			}
		case "histogram":
			if err := writePrometheusHist(w, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writePrometheusHist(w io.Writer, s Sample) error {
	var cum uint64
	for i, c := range s.Hist.Counts {
		cum += c
		le := "+Inf"
		if i < len(s.Hist.Bounds) {
			le = formatFloat(s.Hist.Bounds[i])
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", s.Name, withLabel(s.Labels, "le", le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", s.Name, s.Labels, formatFloat(s.Hist.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", s.Name, s.Labels, s.Hist.Count)
	return err
}

// withLabel splices one extra label into an already-rendered label set.
func withLabel(labels, k, v string) string {
	extra := k + `="` + escapeLabelValue(v) + `"`
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

func formatFloat(v float64) string {
	s := fmt.Sprintf("%.9g", v)
	// Trim trailing fractional zeros only: "0", "100" and exponent forms
	// like "1e+12" must pass through untouched.
	if strings.Contains(s, ".") && !strings.ContainsAny(s, "eE") {
		s = strings.TrimRight(s, "0")
		s = strings.TrimRight(s, ".")
	}
	return s
}

// Dump writes a human-readable one-shot report — what the sim and
// experiment binaries print at exit. Counters and gauges are one line
// each; histograms show count, mean, and p50/p90/p99 estimates.
func (r *Registry) Dump(w io.Writer) error {
	samples := r.Snapshot()
	if len(samples) == 0 {
		_, err := fmt.Fprintln(w, "metrics: (none)")
		return err
	}
	if _, err := fmt.Fprintln(w, "metrics:"); err != nil {
		return err
	}
	for _, s := range samples {
		var err error
		switch s.Kind {
		case "counter":
			_, err = fmt.Fprintf(w, "  %s%s = %d\n", s.Name, s.Labels, s.Counter)
		case "gauge":
			_, err = fmt.Fprintf(w, "  %s%s = %s\n", s.Name, s.Labels, formatFloat(s.Gauge))
		case "histogram":
			h := s.Hist
			if h.Count == 0 {
				_, err = fmt.Fprintf(w, "  %s%s: count=0 (no samples)\n", s.Name, s.Labels)
				break
			}
			_, err = fmt.Fprintf(w, "  %s%s: count=%d sum=%s mean=%s p50=%s p90=%s p99=%s\n",
				s.Name, s.Labels, h.Count, formatFloat(h.Sum), formatFloat(h.Sum/float64(h.Count)),
				formatFloat(snapshotQuantile(h, 0.50)),
				formatFloat(snapshotQuantile(h, 0.90)),
				formatFloat(snapshotQuantile(h, 0.99)))
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// snapshotQuantile mirrors Histogram.Quantile over an already-taken
// snapshot.
func snapshotQuantile(s *HistogramSnapshot, q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(s.Bounds) {
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		if c == 0 {
			return s.Bounds[i]
		}
		within := rank - float64(cum-c)
		return lo + (s.Bounds[i]-lo)*(within/float64(c))
	}
	return s.Bounds[len(s.Bounds)-1]
}

// ExpvarMap renders the registry as a JSON-encodable map for the
// /debug/vars endpoint: counters and gauges by id, histograms as
// {count, sum, buckets}.
func (r *Registry) ExpvarMap() map[string]interface{} {
	out := make(map[string]interface{})
	for _, s := range r.Snapshot() {
		id := s.Name + s.Labels
		switch s.Kind {
		case "counter":
			out[id] = s.Counter
		case "gauge":
			out[id] = s.Gauge
		case "histogram":
			out[id] = map[string]interface{}{
				"count":   s.Hist.Count,
				"sum":     s.Hist.Sum,
				"bounds":  s.Hist.Bounds,
				"buckets": s.Hist.Counts,
			}
		}
	}
	return out
}
