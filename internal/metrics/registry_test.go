package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("requests_total", "op", "get")
	b := r.Counter("requests_total", "op", "get")
	if a != b {
		t.Fatal("same (name, labels) returned distinct counters")
	}
	c := r.Counter("requests_total", "op", "put")
	if a == c {
		t.Fatal("different labels returned the same counter")
	}
	// Label order must not matter: sorted canonicalisation.
	d := r.Counter("multi_total", "b", "2", "a", "1")
	e := r.Counter("multi_total", "a", "1", "b", "2")
	if d != e {
		t.Fatal("label order changed instrument identity")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total")
	assertPanics(t, "counter re-registered as gauge", func() { r.Gauge("x_total") })
	assertPanics(t, "invalid name", func() { r.Counter("0bad") })
	assertPanics(t, "odd labels", func() { r.Counter("y_total", "k") })
	assertPanics(t, "duplicate label key", func() { r.Counter("z_total", "k", "1", "k", "2") })
	r.Histogram("h_seconds", []float64{1, 2})
	assertPanics(t, "bounds mismatch", func() { r.Histogram("h_seconds", []float64{1, 3}) })
}

func assertPanics(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", what)
		}
	}()
	fn()
}

func TestRegistrySnapshotOrderingStable(t *testing.T) {
	r := NewRegistry()
	// Register in deliberately shuffled order.
	r.Counter("b_total", "op", "z")
	r.Gauge("a_gauge")
	r.Counter("b_total", "op", "a")
	r.Histogram("c_seconds", []float64{0.1, 1})
	want := []string{"a_gauge", `b_total{op="a"}`, `b_total{op="z"}`, "c_seconds"}
	snap := r.Snapshot()
	if len(snap) != len(want) {
		t.Fatalf("snapshot has %d series, want %d", len(snap), len(want))
	}
	for i, s := range snap {
		if got := s.Name + s.Labels; got != want[i] {
			t.Errorf("series %d = %s, want %s", i, got, want[i])
		}
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("rpc_total", "op", "get").Add(3)
	r.Gauge("depth").Set(2.5)
	h := r.Histogram("lat_seconds", []float64{0.5, 1})
	h.Observe(0.4)
	h.Observe(0.7)
	h.Observe(9)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := `# TYPE depth gauge
depth 2.5
# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.5"} 1
lat_seconds_bucket{le="1"} 2
lat_seconds_bucket{le="+Inf"} 3
lat_seconds_sum 10.1
lat_seconds_count 3
# TYPE rpc_total counter
rpc_total{op="get"} 3
`
	if got != want {
		t.Errorf("exposition mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestWritePrometheusEscapesLabelValues(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "path", "a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `esc_total{path="a\"b\\c\nd"} 1`) {
		t.Errorf("label value not escaped:\n%s", b.String())
	}
}

func TestDumpReport(t *testing.T) {
	r := NewRegistry()
	r.Counter("events_total").Add(7)
	h := r.Histogram("t_seconds", []float64{1, 2, 4})
	for i := 0; i < 10; i++ {
		h.Observe(1.5)
	}
	var b strings.Builder
	if err := r.Dump(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, frag := range []string{"events_total = 7", "t_seconds: count=10", "p50="} {
		if !strings.Contains(out, frag) {
			t.Errorf("Dump output missing %q:\n%s", frag, out)
		}
	}
}

func TestExpvarMap(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "op", "x").Add(2)
	r.Gauge("g").Set(1.25)
	r.Histogram("h_seconds", []float64{1}).Observe(0.5)
	m := r.ExpvarMap()
	if m[`c_total{op="x"}`] != uint64(2) {
		t.Errorf("counter = %v", m[`c_total{op="x"}`])
	}
	if m["g"] != 1.25 {
		t.Errorf("gauge = %v", m["g"])
	}
	hm, ok := m["h_seconds"].(map[string]interface{})
	if !ok || hm["count"] != uint64(1) {
		t.Errorf("histogram = %v", m["h_seconds"])
	}
}

func TestRegistryConcurrentRegistration(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	counters := make([]*Counter, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			counters[g] = r.Counter("shared_total", "op", "x")
			for i := 0; i < 1000; i++ {
				counters[g].Inc()
			}
		}(g)
	}
	wg.Wait()
	for _, c := range counters[1:] {
		if c != counters[0] {
			t.Fatal("concurrent registration returned distinct instruments")
		}
	}
	if got := counters[0].Load(); got != 8000 {
		t.Fatalf("shared counter = %d, want 8000", got)
	}
}

// The hot-path guard backing `make obs`: Inc and Observe must not
// allocate. Benchmarks report the same via -benchmem.
func TestHotPathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("alloc_total")
	h := r.Histogram("alloc_seconds", DurationBuckets)
	g := r.Gauge("alloc_gauge")
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocates %v bytes/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.002) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v bytes/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Add(1) }); n != 0 {
		t.Errorf("Gauge.Add allocates %v bytes/op", n)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", DurationBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 1e-5)
	}
}

func TestFormatFloatEdgeCases(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		100:     "100",
		0.5:     "0.5",
		1.50:    "1.5",
		1e12:    "1e+12",
		0.00001: "1e-05",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestDumpEmptyHistogram(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("empty_seconds", DurationBuckets)
	var b strings.Builder
	if err := reg.Dump(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "empty_seconds: count=0 (no samples)") {
		t.Errorf("empty histogram renders badly:\n%s", b.String())
	}
}
