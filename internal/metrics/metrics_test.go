package metrics

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestSeriesObserve(t *testing.T) {
	s, err := NewSeries("cov", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	s.Observe(10*time.Minute, true)
	s.Observe(20*time.Minute, false)
	s.Observe(90*time.Minute, true)
	if got := s.At(0); got != 0.5 {
		t.Fatalf("bucket 0 = %v, want 0.5", got)
	}
	if got := s.At(1); got != 1.0 {
		t.Fatalf("bucket 1 = %v, want 1.0", got)
	}
	if !math.IsNaN(s.At(5)) {
		t.Fatal("missing bucket not NaN")
	}
	if got := s.Overall(); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("Overall = %v", got)
	}
}

func TestSeriesAddMean(t *testing.T) {
	s, err := NewSeries("delay", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	s.Add(0, 10)
	s.Add(time.Minute, 20)
	if got := s.At(0); got != 15 {
		t.Fatalf("mean bucket = %v, want 15", got)
	}
}

func TestSeriesPointsSkipEmpty(t *testing.T) {
	s, err := NewSeries("x", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	s.Observe(30*time.Minute, true)
	s.Observe(5*time.Hour, true)
	pts := s.Points()
	if len(pts) != 2 {
		t.Fatalf("Points = %v", pts)
	}
	if pts[0].Time != time.Hour || pts[1].Time != 6*time.Hour {
		t.Fatalf("point times: %v", pts)
	}
}

func TestSeriesRejectsBadBucket(t *testing.T) {
	if _, err := NewSeries("x", 0); err == nil {
		t.Fatal("zero bucket accepted")
	}
}

func TestSeriesNegativeTimeClamped(t *testing.T) {
	s, err := NewSeries("x", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	s.Observe(-time.Hour, true)
	if got := s.At(0); got != 1 {
		t.Fatalf("negative-time observation lost: %v", got)
	}
}

func TestSummaryStats(t *testing.T) {
	var s Summary
	if !math.IsNaN(s.Mean()) || !math.IsNaN(s.Quantile(0.5)) {
		t.Fatal("empty summary not NaN")
	}
	for _, v := range []float64{5, 1, 3, 2, 4} {
		s.Observe(v)
	}
	if s.Count() != 5 {
		t.Fatalf("Count = %d", s.Count())
	}
	if s.Mean() != 3 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if s.Quantile(0) != 1 || s.Max() != 5 {
		t.Fatalf("extremes: %v, %v", s.Quantile(0), s.Max())
	}
	if s.Quantile(0.5) != 3 {
		t.Fatalf("median = %v", s.Quantile(0.5))
	}
}

func TestWriteCSV(t *testing.T) {
	a, err := NewSeries("a", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSeries("b", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	a.Observe(0, true)
	a.Observe(90*time.Minute, false)
	b.Observe(0, true)
	var sb strings.Builder
	if err := WriteCSV(&sb, a, b); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines: %q", out)
	}
	if lines[0] != "time_hours,a,b" {
		t.Fatalf("header: %q", lines[0])
	}
	if !strings.Contains(lines[1], "1.0000,1.0000") {
		t.Fatalf("row 1: %q", lines[1])
	}
	// Bucket 2 has no b data → trailing empty field.
	if !strings.HasSuffix(lines[2], ",") {
		t.Fatalf("row 2 should end with empty field: %q", lines[2])
	}
}

func TestWriteCSVNoSeries(t *testing.T) {
	var sb strings.Builder
	if err := WriteCSV(&sb); err == nil {
		t.Fatal("empty series list accepted")
	}
}

func TestAsciiChartRenders(t *testing.T) {
	s, err := NewSeries("coverage", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	for h := 0; h < 24; h++ {
		s.Observe(time.Duration(h)*time.Hour, h%2 == 0)
	}
	out := AsciiChart("Figure 1", 40, 10, s)
	if !strings.Contains(out, "Figure 1") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "* coverage") {
		t.Fatal("legend missing")
	}
	if !strings.Contains(out, "*") {
		t.Fatal("no data points rendered")
	}
	if len(strings.Split(out, "\n")) < 10 {
		t.Fatal("chart too short")
	}
}

func TestAsciiChartClampsTinyDimensions(t *testing.T) {
	s, err := NewSeries("x", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	s.Observe(0, true)
	out := AsciiChart("t", 1, 1, s)
	if out == "" {
		t.Fatal("empty chart")
	}
}
