package sim

import "time"

// Clock is a virtual simulation clock. Time starts at zero and advances
// only when the scheduler executes events; it never reads the wall clock.
type Clock struct {
	now time.Duration
}

// Now returns the current virtual time as an offset from the simulation
// epoch.
func (c *Clock) Now() time.Duration { return c.now }

// advance moves the clock forward. The scheduler is the only caller; time
// never moves backwards.
func (c *Clock) advance(t time.Duration) {
	if t > c.now {
		c.now = t
	}
}
