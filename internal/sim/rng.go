// Package sim provides a deterministic discrete-event simulation kernel:
// a virtual clock, an event heap, and seed-derived random number streams.
//
// Every stochastic component of the reproduction draws from an RNG stream
// derived from a single experiment seed, so runs are reproducible
// bit-for-bit regardless of goroutine scheduling (the kernel itself is
// single-threaded by design; concurrency lives in the DHT transports, not
// in the simulator).
package sim

import "math"

// RNG is a small, fast, deterministic generator (splitmix64 core with an
// xorshift-style output mix). It intentionally does not wrap math/rand so
// that stream derivation (DeriveStream) is stable across Go releases.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. A zero seed is valid.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed + 0x9e3779b97f4a7c15}
}

// DeriveStream returns an independent generator for the named substream.
// Streams derived from the same (seed, name) pair are identical; streams
// with different names are statistically independent.
func (r *RNG) DeriveStream(name string) *RNG {
	h := uint64(14695981039346656037) // FNV-1a offset basis
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return NewRNG(r.state ^ h)
}

// Stream is the value-type form of DeriveStream, for callers that embed
// generators directly in slices — the struct-of-arrays layout of the
// million-peer simulator, where one pointer per peer would double the
// footprint of the RNG state.
func (r *RNG) Stream(name string) RNG {
	return *r.DeriveStream(name)
}

// At returns the i-th indexed substream of r as a value. Substreams with
// different indices are statistically independent; the same (r, i) pair
// always yields the same stream. It does not advance r.
//
//mdrep:hotpath
func (r *RNG) At(i uint64) RNG {
	z := r.state + (i+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return RNG{state: z ^ (z >> 31)}
}

// Uint64 returns the next 64 uniformly distributed bits.
//
//mdrep:hotpath
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
//
//mdrep:hotpath
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0, mirroring
// math/rand; callers control n so this is a programming error, not input.
//
//mdrep:hotpath
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform value in [0, n).
//
//mdrep:hotpath
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// NormFloat64 returns a normally distributed value (mean 0, stddev 1)
// using the Box-Muller transform.
//
//mdrep:hotpath
func (r *RNG) NormFloat64() float64 {
	for {
		u1 := r.Float64()
		u2 := r.Float64()
		if u1 <= 0 {
			continue
		}
		return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	}
}

// ExpFloat64 returns an exponentially distributed value with rate 1.
//
//mdrep:hotpath
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}
