package sim

import (
	"container/heap"
	"errors"
	"time"
)

// Event is a callback scheduled to run at a virtual time.
type Event func(now time.Duration)

type scheduledEvent struct {
	at    time.Duration
	seq   uint64 // tie-breaker: FIFO among events at the same instant
	fn    Event
	index int
}

type eventHeap []*scheduledEvent

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev, ok := x.(*scheduledEvent)
	if !ok {
		return
	}
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// ErrStopped is returned by Run when the scheduler was stopped explicitly
// before the horizon or the event queue drained.
var ErrStopped = errors.New("sim: scheduler stopped")

// Scheduler executes events in virtual-time order. It is single-threaded:
// events run on the goroutine that calls Run or Step.
type Scheduler struct {
	clock   Clock
	queue   eventHeap
	seq     uint64
	stopped bool
	// Executed counts events run since construction; useful for cost
	// accounting in benchmarks.
	Executed uint64
}

// NewScheduler returns an empty scheduler at virtual time zero.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.clock.Now() }

// Len returns the number of pending events.
func (s *Scheduler) Len() int { return len(s.queue) }

// At schedules fn to run at absolute virtual time at. Events scheduled in
// the past run at the current time (the clock never rewinds).
func (s *Scheduler) At(at time.Duration, fn Event) {
	if at < s.clock.Now() {
		at = s.clock.Now()
	}
	s.seq++
	heap.Push(&s.queue, &scheduledEvent{at: at, seq: s.seq, fn: fn})
}

// After schedules fn to run delay after the current virtual time.
func (s *Scheduler) After(delay time.Duration, fn Event) {
	s.At(s.clock.Now()+delay, fn)
}

// Every schedules fn to run now+interval, then every interval thereafter,
// until the scheduler stops or the horizon passes. fn may return false to
// cancel the series.
func (s *Scheduler) Every(interval time.Duration, fn func(now time.Duration) bool) {
	var tick Event
	tick = func(now time.Duration) {
		if !fn(now) {
			return
		}
		s.After(interval, tick)
	}
	s.After(interval, tick)
}

// Stop halts Run after the currently executing event returns.
func (s *Scheduler) Stop() { s.stopped = true }

// Step executes the single earliest pending event. It reports whether an
// event was executed.
func (s *Scheduler) Step() bool {
	if len(s.queue) == 0 || s.stopped {
		return false
	}
	ev, ok := heap.Pop(&s.queue).(*scheduledEvent)
	if !ok {
		return false
	}
	s.clock.advance(ev.at)
	s.Executed++
	ev.fn(s.clock.Now())
	return true
}

// Run executes events until the queue drains, Stop is called, or virtual
// time would pass horizon (a zero horizon means no limit). It returns
// ErrStopped only for an explicit Stop; draining or reaching the horizon
// is normal completion.
func (s *Scheduler) Run(horizon time.Duration) error {
	for len(s.queue) > 0 {
		if s.stopped {
			return ErrStopped
		}
		if horizon > 0 && s.queue[0].at > horizon {
			s.clock.advance(horizon)
			return nil
		}
		s.Step()
	}
	if horizon > 0 {
		s.clock.advance(horizon)
	}
	return nil
}
