package sim

import (
	"sort"
	"testing"
	"time"
)

// TestWheelMatchesReference drives the wheel and a sorted-slice reference
// queue with an identical randomized schedule — including items inserted
// mid-drain — and requires identical pop order. This pins the wheel to
// the Scheduler's (at, seq) heap semantics across level boundaries,
// cascades and overflow jumps.
func TestWheelMatchesReference(t *testing.T) {
	type ref struct {
		at  uint64 // ticks
		seq int
	}
	const tick = time.Millisecond

	for seed := uint64(1); seed <= 5; seed++ {
		w, err := NewWheel[int](nil, tick)
		if err != nil {
			t.Fatal(err)
		}
		rng := NewRNG(seed)
		var queue []ref
		var popped, expected []int
		seq := 0
		now := uint64(0)

		schedule := func(horizonTicks uint64, n int) {
			for i := 0; i < n; i++ {
				// Mix of near, far, very far (overflow) and past times.
				var at uint64
				switch rng.Intn(10) {
				case 0:
					at = now // immediate
				case 1, 2, 3, 4:
					at = now + uint64(rng.Intn(int(horizonTicks)))
				case 5, 6, 7:
					at = now + uint64(rng.Intn(1<<18))
				case 8:
					at = now + uint64(rng.Intn(1<<26))
				default:
					at = now + wheelSpan + uint64(rng.Intn(1<<20)) // overflow
				}
				w.Schedule(time.Duration(at)*tick, seq)
				queue = append(queue, ref{at: at, seq: seq})
				seq++
			}
		}

		schedule(1024, 200)
		for len(queue) > 0 {
			sort.SliceStable(queue, func(i, j int) bool {
				if queue[i].at != queue[j].at {
					return queue[i].at < queue[j].at
				}
				return queue[i].seq < queue[j].seq
			})
			nowT, got, ok := w.Next()
			if !ok {
				t.Fatalf("seed %d: wheel empty with %d reference items left", seed, len(queue))
			}
			want := queue[0]
			queue = queue[1:]
			now = want.at
			if uint64(nowT/tick) != want.at {
				t.Fatalf("seed %d: popped at tick %d, want %d", seed, nowT/tick, want.at)
			}
			popped = append(popped, got)
			expected = append(expected, want.seq)
			// Occasionally schedule more mid-drain, sometimes at the
			// exact current tick to exercise same-tick FIFO.
			if rng.Intn(20) == 0 && seq < 600 {
				schedule(256, 1+rng.Intn(5))
			}
		}
		if _, _, ok := w.Next(); ok {
			t.Fatalf("seed %d: wheel not empty after reference drained", seed)
		}
		for i := range popped {
			if popped[i] != expected[i] {
				t.Fatalf("seed %d: pop %d = item %d, want %d", seed, i, popped[i], expected[i])
			}
		}
		if w.Executed != uint64(len(popped)) {
			t.Fatalf("seed %d: Executed = %d, want %d", seed, w.Executed, len(popped))
		}
	}
}

func TestWheelSameTickFIFO(t *testing.T) {
	w, err := NewWheel[int](nil, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	at := 42 * time.Second
	for i := 0; i < 10; i++ {
		w.Schedule(at, i)
	}
	for i := 0; i < 10; i++ {
		now, got, ok := w.Next()
		if !ok || got != i || now != at {
			t.Fatalf("pop %d: got (%v, %d, %v)", i, now, got, ok)
		}
	}
}

func TestWheelClampsPast(t *testing.T) {
	w, err := NewWheel[string](nil, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	w.Schedule(time.Minute, "a")
	if now, _, _ := w.Next(); now != time.Minute {
		t.Fatalf("now = %v, want 1m", now)
	}
	w.Schedule(time.Second, "past") // before current time: runs now
	now, got, ok := w.Next()
	if !ok || got != "past" || now != time.Minute {
		t.Fatalf("past event: got (%v, %q, %v)", now, got, ok)
	}
}

func TestWheelRoundsUpToTick(t *testing.T) {
	w, err := NewWheel[int](nil, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	w.Schedule(1500*time.Millisecond, 1)
	if now, _, _ := w.Next(); now != 2*time.Second {
		t.Fatalf("now = %v, want 2s", now)
	}
}

func TestWheelSparseJumps(t *testing.T) {
	// Events separated by huge empty stretches must still pop in order
	// and quickly (the bitmap scan skips empty time wholesale).
	w, err := NewWheel[int](nil, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	times := []time.Duration{
		time.Millisecond,
		time.Second,
		time.Hour,
		24 * time.Hour,
		30 * 24 * time.Hour,
	}
	for i, at := range times {
		w.Schedule(at, i)
	}
	for i := range times {
		now, got, ok := w.Next()
		if !ok || got != i {
			t.Fatalf("pop %d: got (%v, %d, %v)", i, now, got, ok)
		}
		if now < times[i] {
			t.Fatalf("pop %d: time %v before schedule %v", i, now, times[i])
		}
	}
}

func TestWheelSharedClock(t *testing.T) {
	clock := &Clock{}
	w, err := NewWheel[int](clock, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	w.Schedule(5*time.Second, 1)
	if _, _, ok := w.Next(); !ok {
		t.Fatal("empty wheel")
	}
	if clock.Now() != 5*time.Second {
		t.Fatalf("clock = %v, want 5s", clock.Now())
	}
	if w.Clock() != clock {
		t.Fatal("Clock() did not return the attached clock")
	}
}

func TestWheelRejectsBadTick(t *testing.T) {
	if _, err := NewWheel[int](nil, 0); err == nil {
		t.Fatal("want error for zero tick")
	}
	if _, err := NewWheel[int](nil, -time.Second); err == nil {
		t.Fatal("want error for negative tick")
	}
}

func TestRNGValueStreams(t *testing.T) {
	base := NewRNG(7)
	a1 := base.At(1)
	a1b := base.At(1)
	if a1.Uint64() != a1b.Uint64() {
		t.Fatal("At not reproducible")
	}
	a2 := base.At(2)
	a1c := base.At(1)
	if a1c.Uint64() == a2.Uint64() {
		t.Fatal("distinct indices yielded identical first draw")
	}
	s := base.Stream("peers")
	s2 := base.DeriveStream("peers")
	if s.Uint64() != s2.Uint64() {
		t.Fatal("Stream disagrees with DeriveStream")
	}
}
