package sim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed RNGs diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestDeriveStreamIndependence(t *testing.T) {
	root := NewRNG(7)
	s1 := root.DeriveStream("alpha")
	s2 := root.DeriveStream("beta")
	s1again := NewRNG(7).DeriveStream("alpha")
	for i := 0; i < 100; i++ {
		v := s1.Uint64()
		if v != s1again.Uint64() {
			t.Fatal("derived stream not reproducible")
		}
		if v == s2.Uint64() {
			t.Fatal("derived streams with different names coincide")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(5)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) hit only %d distinct values in 1000 draws", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(9)
	f := func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(13)
	const n = 100000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRNG(17)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("exponential draw negative: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.03 {
		t.Fatalf("exponential mean %v too far from 1", mean)
	}
}

func TestSchedulerOrdersEvents(t *testing.T) {
	s := NewScheduler()
	var order []int
	s.At(30*time.Second, func(time.Duration) { order = append(order, 3) })
	s.At(10*time.Second, func(time.Duration) { order = append(order, 1) })
	s.At(20*time.Second, func(time.Duration) { order = append(order, 2) })
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events ran out of order: %v", order)
	}
	if s.Now() != 30*time.Second {
		t.Fatalf("clock at %v, want 30s", s.Now())
	}
}

func TestSchedulerFIFOAtSameInstant(t *testing.T) {
	s := NewScheduler()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Second, func(time.Duration) { order = append(order, i) })
	}
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", order)
		}
	}
}

func TestSchedulerHorizon(t *testing.T) {
	s := NewScheduler()
	ran := false
	s.At(time.Hour, func(time.Duration) { ran = true })
	if err := s.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("event past horizon was executed")
	}
	if s.Now() != time.Minute {
		t.Fatalf("clock at %v, want horizon 1m", s.Now())
	}
	if s.Len() != 1 {
		t.Fatalf("pending events = %d, want 1", s.Len())
	}
}

func TestSchedulerStop(t *testing.T) {
	s := NewScheduler()
	count := 0
	s.At(time.Second, func(time.Duration) { count++; s.Stop() })
	s.At(2*time.Second, func(time.Duration) { count++ })
	err := s.Run(0)
	if err != ErrStopped {
		t.Fatalf("Run err = %v, want ErrStopped", err)
	}
	if count != 1 {
		t.Fatalf("ran %d events after Stop, want 1", count)
	}
}

func TestSchedulerAfterNesting(t *testing.T) {
	s := NewScheduler()
	var times []time.Duration
	s.After(time.Second, func(now time.Duration) {
		times = append(times, now)
		s.After(time.Second, func(now time.Duration) {
			times = append(times, now)
		})
	})
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(times) != 2 || times[0] != time.Second || times[1] != 2*time.Second {
		t.Fatalf("nested After times = %v", times)
	}
}

func TestSchedulerEvery(t *testing.T) {
	s := NewScheduler()
	ticks := 0
	s.Every(time.Minute, func(time.Duration) bool {
		ticks++
		return ticks < 5
	})
	if err := s.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	if ticks != 5 {
		t.Fatalf("ticks = %d, want 5", ticks)
	}
}

func TestSchedulerPastEventRunsNow(t *testing.T) {
	s := NewScheduler()
	s.At(10*time.Second, func(now time.Duration) {
		s.At(time.Second, func(now time.Duration) {
			if now != 10*time.Second {
				t.Errorf("past event ran at %v, want clamped to 10s", now)
			}
		})
	})
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
}

func TestSchedulerExecutedCount(t *testing.T) {
	s := NewScheduler()
	for i := 0; i < 25; i++ {
		s.At(time.Duration(i)*time.Second, func(time.Duration) {})
	}
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if s.Executed != 25 {
		t.Fatalf("Executed = %d, want 25", s.Executed)
	}
}
