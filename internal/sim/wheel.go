package sim

import (
	"errors"
	"math/bits"
	"time"
)

// The wheel geometry: four levels of 256 slots each. Level 0 resolves
// single ticks; each higher level covers 256x the span of the one below,
// so the wheel spans 2^32 ticks before spilling into the overflow list.
const (
	wheelBits   = 8
	wheelSlots  = 1 << wheelBits
	wheelMask   = wheelSlots - 1
	wheelLevels = 4
	wheelSpan   = uint64(1) << (wheelBits * wheelLevels)
)

type wheelItem[T any] struct {
	at      uint64 // absolute tick
	seq     uint64 // FIFO tie-breaker among items at the same tick
	payload T
}

// Wheel is a hierarchical timing wheel: the event queue of the
// million-peer simulator. Compared to the Scheduler's binary heap it
// stores plain payload values instead of closures (no per-event
// allocation beyond slot-slice growth) and pops in amortised O(1) per
// event, skipping empty stretches of virtual time through per-level
// occupancy bitmaps instead of ticking through them.
//
// Determinism contract: Next returns items in nondecreasing virtual-time
// order, FIFO among items scheduled for the same tick, exactly like the
// Scheduler's (at, seq) heap order. The wheel advances the attached
// virtual Clock as it pops and never reads the wall clock.
type Wheel[T any] struct {
	clock *Clock
	tick  time.Duration
	cur   uint64 // current tick; never decreases
	seq   uint64
	count int // scheduled and not yet popped (including pending)
	// Executed counts events returned by Next since construction.
	Executed uint64

	slots [wheelLevels][wheelSlots][]wheelItem[T]
	occ   [wheelLevels][wheelSlots / 64]uint64

	// overflow holds items more than wheelSpan ticks ahead; it is only
	// consulted when every level is empty, so order within it is free.
	overflow []wheelItem[T]

	// pending is the slot currently being drained, sorted by seq.
	pending []wheelItem[T]
	pendIdx int
}

// NewWheel builds a wheel with the given tick granularity that advances
// clock as it pops. A nil clock gets a private one. Scheduling times are
// rounded up to whole ticks, so tick is the simulator's time resolution.
func NewWheel[T any](clock *Clock, tick time.Duration) (*Wheel[T], error) {
	if tick <= 0 {
		return nil, errors.New("sim: non-positive wheel tick")
	}
	if clock == nil {
		clock = &Clock{}
	}
	return &Wheel[T]{clock: clock, tick: tick}, nil
}

// Now returns the current virtual time.
func (w *Wheel[T]) Now() time.Duration { return w.clock.Now() }

// Clock returns the virtual clock the wheel advances.
func (w *Wheel[T]) Clock() *Clock { return w.clock }

// Tick returns the wheel's time resolution.
func (w *Wheel[T]) Tick() time.Duration { return w.tick }

// Len returns the number of scheduled, not yet popped items.
func (w *Wheel[T]) Len() int { return w.count }

// Schedule enqueues payload at absolute virtual time at, rounded up to
// the next tick. Times in the past run at the current time; the wheel,
// like the Scheduler, never rewinds.
//
//mdrep:hotpath
func (w *Wheel[T]) Schedule(at time.Duration, payload T) {
	t := uint64((at + w.tick - 1) / w.tick)
	if t < w.cur {
		t = w.cur
	}
	w.seq++
	w.insert(wheelItem[T]{at: t, seq: w.seq, payload: payload})
	w.count++
}

// insert places an item at the lowest level whose window, relative to
// cur, contains the item's tick. Within a level this guarantees the slot
// index is >= cur's index at that level, so scans never wrap.
//
//mdrep:hotpath
func (w *Wheel[T]) insert(it wheelItem[T]) {
	for l := 0; l < wheelLevels; l++ {
		shift := uint(wheelBits * (l + 1))
		if it.at>>shift == w.cur>>shift {
			slot := int(it.at>>(wheelBits*l)) & wheelMask
			w.slots[l][slot] = append(w.slots[l][slot], it)
			w.occ[l][slot>>6] |= 1 << (slot & 63)
			return
		}
	}
	w.overflow = append(w.overflow, it)
}

// scan returns the first occupied slot index >= from at the given level.
//
//mdrep:hotpath
func (w *Wheel[T]) scan(level, from int) (int, bool) {
	word := from >> 6
	m := w.occ[level][word] & (^uint64(0) << (from & 63))
	for {
		if m != 0 {
			return word<<6 + bits.TrailingZeros64(m), true
		}
		word++
		if word >= wheelSlots/64 {
			return 0, false
		}
		m = w.occ[level][word]
	}
}

// takeSlot drains a slot into pending, sorted by seq (cascading can
// interleave insertion orders; seq restores global FIFO).
//
//mdrep:hotpath
func (w *Wheel[T]) takeSlot(level, slot int) {
	items := w.slots[level][slot]
	w.slots[level][slot] = items[:0:cap(items)]
	w.occ[level][slot>>6] &^= 1 << (slot & 63)
	w.pending = append(w.pending[:0], items...)
	w.pendIdx = 0
	// Insertion sort by seq: a slot holds a handful of items and seqs
	// are unique, and the closure-free form keeps the pop path
	// allocation-free (sort.Slice boxes its less func on every call).
	for i := 1; i < len(w.pending); i++ {
		it := w.pending[i]
		j := i - 1
		for j >= 0 && w.pending[j].seq > it.seq {
			w.pending[j+1] = w.pending[j]
			j--
		}
		w.pending[j+1] = it
	}
}

// refill advances cur to the earliest occupied tick and drains its level-0
// slot into pending. It reports whether any item was found.
//
//mdrep:hotpath
func (w *Wheel[T]) refill() bool {
	for {
		// Level 0: every item in a slot shares one exact tick.
		if s, ok := w.scan(0, int(w.cur&wheelMask)); ok {
			w.cur = (w.cur &^ wheelMask) | uint64(s)
			w.takeSlot(0, s)
			return true
		}
		// Higher levels: jump to the earliest occupied sub-window and
		// cascade its items down, then retry from level 0.
		cascaded := false
		for l := 1; l < wheelLevels; l++ {
			shift := uint(wheelBits * l)
			if s, ok := w.scan(l, int(w.cur>>shift)&wheelMask); ok {
				groupMask := (uint64(1) << (wheelBits * (l + 1))) - 1
				w.cur = (w.cur &^ groupMask) | uint64(s)<<shift
				items := w.slots[l][s]
				w.slots[l][s] = items[:0:cap(items)]
				w.occ[l][s>>6] &^= 1 << (s & 63)
				for _, it := range items {
					w.insert(it)
				}
				cascaded = true
				break
			}
		}
		if cascaded {
			continue
		}
		if len(w.overflow) > 0 {
			w.drainOverflow()
			continue
		}
		return false
	}
}

// drainOverflow jumps cur to the window of the earliest overflow item and
// reinserts every overflow item that window now covers.
func (w *Wheel[T]) drainOverflow() {
	min := w.overflow[0].at
	for _, it := range w.overflow[1:] {
		if it.at < min {
			min = it.at
		}
	}
	w.cur = min &^ (wheelSpan - 1)
	rest := w.overflow[:0]
	for _, it := range w.overflow {
		if it.at>>(wheelBits*wheelLevels) == w.cur>>(wheelBits*wheelLevels) {
			w.insert(it)
		} else {
			rest = append(rest, it)
		}
	}
	w.overflow = rest
}

// Next pops the earliest scheduled item, advancing the virtual clock to
// its tick. It reports ok=false when the wheel is empty.
//
//mdrep:hotpath
func (w *Wheel[T]) Next() (now time.Duration, payload T, ok bool) {
	if w.pendIdx >= len(w.pending) {
		if !w.refill() {
			var zero T
			return w.clock.Now(), zero, false
		}
	}
	it := w.pending[w.pendIdx]
	w.pendIdx++
	w.count--
	w.Executed++
	w.clock.advance(time.Duration(it.at) * w.tick)
	return w.clock.Now(), it.payload, true
}
