// Package experiments contains one runner per reproduced result: Figure 1
// (request coverage) and the extension experiments E1–E7 documented in
// DESIGN.md. Each runner is deterministic under its seed, returns a
// structured result, and can render itself for terminal output; the
// cmd/ binaries and the root bench harness are thin wrappers around this
// package.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"mdrep/internal/core"
	"mdrep/internal/metrics"
	"mdrep/internal/trace"
)

// Scale selects how large an experiment instance to run.
type Scale int

// Experiment scales: Small for CI and benchmarks, Full for the numbers
// recorded in EXPERIMENTS.md.
const (
	ScaleSmall Scale = iota + 1
	ScaleFull
)

// Fig1Config parameterises the Figure 1 reproduction.
type Fig1Config struct {
	// Trace generates the synthetic Maze-like workload.
	Trace trace.GenConfig
	// VoteFractions are the explicit-evaluation coverages k to plot; the
	// implicit case (1.0) reproduces the paper's "evaluate 100%" line.
	VoteFractions []float64
	// Window is the evaluation retention interval.
	Window time.Duration
	// Buckets is the number of points per series.
	Buckets int
}

// DefaultFig1Config returns the configuration recorded in EXPERIMENTS.md.
func DefaultFig1Config(scale Scale) Fig1Config {
	tc := trace.DefaultGenConfig()
	if scale == ScaleSmall {
		tc.Peers = 200
		tc.Files = 1000
		tc.Downloads = 20000
	}
	return Fig1Config{
		Trace:         tc,
		VoteFractions: []float64{0.05, 0.1, 0.2, 0.5, 1.0},
		Window:        0,
		Buckets:       30,
	}
}

// Fig1Result is the reproduced Figure 1.
type Fig1Result struct {
	Config Fig1Config
	// Series holds one coverage-over-time series per vote fraction.
	Series []*metrics.Series
	// Steady holds the steady-state coverage per vote fraction.
	Steady []float64
	// TraceStats summarises the generated workload.
	TraceStats trace.Stats
}

// Figure1 generates the trace once and measures request coverage for each
// evaluation coverage, reproducing the paper's Figure 1.
func Figure1(cfg Fig1Config) (*Fig1Result, error) {
	tr, err := trace.Generate(cfg.Trace)
	if err != nil {
		return nil, fmt.Errorf("experiments: figure 1 trace: %w", err)
	}
	return Figure1OnTrace(tr, cfg)
}

// Figure1OnTrace runs the coverage measurement on a supplied trace — the
// path for replaying a real log converted to the paper's schema.
func Figure1OnTrace(tr *trace.Trace, cfg Fig1Config) (*Fig1Result, error) {
	res := &Fig1Result{Config: cfg, TraceStats: tr.ComputeStats()}
	for _, k := range cfg.VoteFractions {
		cov, err := core.MeasureCoverage(tr, core.CoverageConfig{
			VoteFraction: k,
			Window:       cfg.Window,
			Buckets:      cfg.Buckets,
			Seed:         cfg.Trace.Seed + 1,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: coverage at k=%v: %w", k, err)
		}
		name := fmt.Sprintf("k=%d%%", int(k*100+0.5))
		if k >= 1 {
			name = "implicit(100%)"
		}
		series, err := metrics.NewSeries(name, tr.Duration()/time.Duration(cfg.Buckets))
		if err != nil {
			return nil, err
		}
		for _, p := range cov.Series {
			if p.Requests > 0 {
				series.Add(p.Time-1, p.Fraction())
			}
		}
		res.Series = append(res.Series, series)
		res.Steady = append(res.Steady, cov.SteadyStateFraction())
	}
	return res, nil
}

// Render formats the figure for the terminal: the ASCII chart plus the
// steady-state table compared against the paper's reported bands.
func (r *Fig1Result) Render() string {
	var sb strings.Builder
	sb.WriteString(metrics.AsciiChart(
		"Figure 1 — request coverage vs evaluation coverage (time →)",
		72, 16, r.Series...))
	sb.WriteString("\nsteady-state coverage:\n")
	for i, s := range r.Series {
		fmt.Fprintf(&sb, "  %-16s %.3f\n", s.Name(), r.Steady[i])
	}
	fmt.Fprintf(&sb, "trace: %d peers, %d files, %d downloads over %.0f days\n",
		r.TraceStats.Peers, r.TraceStats.Files, r.TraceStats.Downloads,
		r.TraceStats.Duration.Hours()/24)
	return sb.String()
}
