package experiments

import (
	"fmt"
	"strings"
	"time"

	"mdrep/internal/dht"
	"mdrep/internal/eval"
	"mdrep/internal/identity"
	"mdrep/internal/obs"
)

// E6Config parameterises the DHT overhead experiment.
type E6Config struct {
	// RingSizes are the node counts swept.
	RingSizes []int
	// Files is how many files are published per configuration.
	Files int
	// Lookups is how many lookups measure hop counts.
	Lookups int
	// ChurnFraction is the fraction of nodes failed for the
	// fault-tolerance measurement.
	ChurnFraction float64
}

// DefaultE6Config returns the sweep recorded in EXPERIMENTS.md.
func DefaultE6Config(scale Scale) E6Config {
	cfg := E6Config{
		RingSizes:     []int{16, 32, 64},
		Files:         200,
		Lookups:       300,
		ChurnFraction: 0.1,
	}
	if scale == ScaleFull {
		cfg.RingSizes = []int{16, 32, 64, 128, 256}
		cfg.Files = 500
		cfg.Lookups = 1000
	}
	return cfg
}

// E6Row is the measurement for one ring size.
type E6Row struct {
	Nodes int
	// MeanLookupHops is FindSuccessor hops per lookup.
	MeanLookupHops float64
	// MsgsPiggyback is RPC messages per file when the evaluation rides
	// along with the index publication (§4.1's design).
	MsgsPiggyback float64
	// MsgsSeparate is RPC messages per file when index and evaluation
	// are stored under separate keys (the strawman the paper avoids).
	MsgsSeparate float64
	// RetrievalOKAfterChurn is the fraction of published files still
	// retrievable after ChurnFraction of the nodes fail and the ring
	// stabilises.
	RetrievalOKAfterChurn float64
}

// E6Result is the DHT overhead sweep.
type E6Result struct {
	Config E6Config
	Rows   []E6Row
}

// E6DHT measures lookup cost, publication overhead with and without
// evaluation piggybacking, and retrieval availability under churn, on
// in-memory rings of increasing size.
func E6DHT(cfg E6Config) (*E6Result, error) {
	if cfg.Files < 1 || cfg.Lookups < 1 {
		return nil, fmt.Errorf("experiments: invalid E6 config %+v", cfg)
	}
	res := &E6Result{Config: cfg}
	for _, n := range cfg.RingSizes {
		if n < 4 {
			return nil, fmt.Errorf("experiments: ring size %d too small", n)
		}
		row, err := e6Ring(cfg, n)
		if err != nil {
			return nil, fmt.Errorf("experiments: E6 ring %d: %w", n, err)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func e6Ring(cfg E6Config, n int) (E6Row, error) {
	ring, err := dht.NewRing(n, nil)
	if err != nil {
		return E6Row{}, err
	}
	row := E6Row{Nodes: n}

	// Lookup hops.
	var hopsBefore uint64
	for _, node := range ring.Nodes {
		hopsBefore += node.LookupHops()
	}
	for i := 0; i < cfg.Lookups; i++ {
		key := dht.HashKey(fmt.Sprintf("lookup-%d", i))
		if _, err := ring.Nodes[i%n].Lookup(obs.SpanContext{}, key); err != nil {
			return E6Row{}, err
		}
	}
	var hopsAfter uint64
	for _, node := range ring.Nodes {
		hopsAfter += node.LookupHops()
	}
	row.MeanLookupHops = float64(hopsAfter-hopsBefore) / float64(cfg.Lookups)

	// Publication overhead: piggybacked vs separate keys.
	mkRecord := func(name string, i int) dht.StoredRecord {
		return dht.StoredRecord{
			Key: dht.HashKey(name),
			Info: eval.Info{
				FileID:     eval.FileID(name),
				OwnerID:    identity.PeerID(fmt.Sprintf("owner-%04d", i)),
				Evaluation: 0.9,
				Timestamp:  time.Duration(i),
			},
		}
	}
	ring.Net.ResetMessages()
	for i := 0; i < cfg.Files; i++ {
		name := fmt.Sprintf("file-%d", i)
		// Piggyback: index entry and evaluation are one record under one
		// key — one routed publish.
		if err := ring.Nodes[i%n].Publish([]dht.StoredRecord{mkRecord(name, i)}); err != nil {
			return E6Row{}, err
		}
	}
	row.MsgsPiggyback = float64(ring.Net.Messages()) / float64(cfg.Files)

	ring.Net.ResetMessages()
	for i := 0; i < cfg.Files; i++ {
		name := fmt.Sprintf("file-sep-%d", i)
		// Separate: the index entry and the evaluation live under
		// different keys, doubling the routed publishes.
		if err := ring.Nodes[i%n].Publish([]dht.StoredRecord{mkRecord(name, i)}); err != nil {
			return E6Row{}, err
		}
		evalRec := mkRecord("eval:"+name, i)
		if err := ring.Nodes[i%n].Publish([]dht.StoredRecord{evalRec}); err != nil {
			return E6Row{}, err
		}
	}
	row.MsgsSeparate = float64(ring.Net.Messages()) / float64(cfg.Files)

	// Churn: fail a fraction of nodes, stabilise the survivors, and
	// check how many of the piggybacked records are still retrievable.
	failed := make(map[string]struct{})
	for i := 0; i < int(float64(n)*cfg.ChurnFraction); i++ {
		addr := ring.Nodes[(i*7+3)%n].Self().Addr
		ring.Net.Fail(addr)
		failed[addr] = struct{}{}
	}
	var survivors []*dht.Node
	for _, node := range ring.Nodes {
		if _, down := failed[node.Self().Addr]; !down {
			survivors = append(survivors, node)
		}
	}
	for round := 0; round < 3*n; round++ {
		for _, node := range survivors {
			node.Stabilize()
		}
	}
	for _, node := range survivors {
		node.FixAllFingers()
	}
	ok := 0
	for i := 0; i < cfg.Files; i++ {
		name := fmt.Sprintf("file-%d", i)
		recs, err := survivors[i%len(survivors)].Retrieve(obs.SpanContext{}, dht.HashKey(name))
		if err == nil && len(recs) > 0 {
			ok++
		}
	}
	row.RetrievalOKAfterChurn = float64(ok) / float64(cfg.Files)
	return row, nil
}

// Render formats E6 as the overhead table.
func (r *E6Result) Render() string {
	var sb strings.Builder
	sb.WriteString("E6 — DHT cost: lookups, publication overhead, churn\n")
	sb.WriteString("nodes  hops/lookup  msgs/publish(piggyback)  msgs/publish(separate)  retrievable-after-churn\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%5d  %11.2f  %23.2f  %22.2f  %23.3f\n",
			row.Nodes, row.MeanLookupHops, row.MsgsPiggyback, row.MsgsSeparate,
			row.RetrievalOKAfterChurn)
	}
	return sb.String()
}
