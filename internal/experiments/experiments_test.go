package experiments

import (
	"strings"
	"testing"

	"mdrep/internal/p2psim"
)

func TestFigure1ReproducesPaperBands(t *testing.T) {
	res, err := Figure1(DefaultFig1Config(ScaleSmall))
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]float64)
	for i, s := range res.Series {
		byName[s.Name()] = res.Steady[i]
	}
	// Paper: 5% → small; 20% → ≈50%; implicit → >80%.
	if v := byName["k=5%"]; v > 0.35 {
		t.Fatalf("k=5%% steady coverage %v, paper reports small", v)
	}
	if v := byName["k=20%"]; v < 0.3 || v > 0.7 {
		t.Fatalf("k=20%% steady coverage %v, paper reports ≈0.5", v)
	}
	if v := byName["implicit(100%)"]; v < 0.8 {
		t.Fatalf("implicit steady coverage %v, paper reports >0.8", v)
	}
	// Monotone in evaluation coverage.
	for i := 1; i < len(res.Steady); i++ {
		if res.Steady[i] < res.Steady[i-1] {
			t.Fatalf("steady coverage not monotone: %v", res.Steady)
		}
	}
}

func TestFigure1RenderContainsSeries(t *testing.T) {
	res, err := Figure1(DefaultFig1Config(ScaleSmall))
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render()
	for _, want := range []string{"Figure 1", "k=5%", "implicit(100%)", "steady-state"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestE1SchemesOrdered(t *testing.T) {
	if testing.Short() {
		t.Skip("E1 runs three full simulations")
	}
	res, err := E1FakeFiles(ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	mdrep := res.Fraction("mdrep")
	naive := res.Fraction("naive-voting")
	none := res.Fraction("none")
	if mdrep < 0 || naive < 0 || none < 0 {
		t.Fatalf("missing runs: %v", res.Labels)
	}
	if mdrep >= naive {
		t.Fatalf("mdrep (%v) not below naive voting (%v)", mdrep, naive)
	}
	if naive >= none {
		t.Fatalf("naive voting (%v) not below undefended (%v)", naive, none)
	}
	// The patient attacker collapses LIP but not MDRep.
	lip := res.Fraction("lip")
	lipPatient := res.Fraction("lip+patient")
	mdrepPatient := res.Fraction("mdrep+patient")
	if lipPatient < lip+0.3 {
		t.Fatalf("patient attack did not collapse LIP: %v vs %v", lipPatient, lip)
	}
	if diff := mdrepPatient - mdrep; diff > 0.1 || diff < -0.1 {
		t.Fatalf("patient attack moved mdrep: %v vs %v", mdrepPatient, mdrep)
	}
	if !strings.Contains(res.Render(), "fake-ratio") {
		t.Fatal("render missing table")
	}
}

func TestE2HonestBeatFreeRiders(t *testing.T) {
	if testing.Short() {
		t.Skip("E2 runs a full simulation")
	}
	res, err := E2Incentive(ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	honest := res.Run.BandwidthByClass[p2psim.Honest].Mean()
	free := res.Run.BandwidthByClass[p2psim.FreeRider].Mean()
	if honest <= free {
		t.Fatalf("honest bandwidth %v not above free-rider %v", honest, free)
	}
	if !strings.Contains(res.Render(), "service differentiation") {
		t.Fatal("render missing header")
	}
}

func TestE3EigenTrustAmplifiesMDRepSuppresses(t *testing.T) {
	res, err := E3Collusion(DefaultE3Config(ScaleSmall))
	if err != nil {
		t.Fatal(err)
	}
	if res.ServiceShare <= 0 || res.ServiceShare > 0.3 {
		t.Fatalf("clique service share %v implausible", res.ServiceShare)
	}
	// EigenTrust lets the clique capture more than its service share;
	// one-step MDRep keeps it below.
	if res.EigenTrustShare <= res.ServiceShare {
		t.Fatalf("eigentrust share %v not amplified above service %v",
			res.EigenTrustShare, res.ServiceShare)
	}
	if res.MDRepShare >= res.ServiceShare {
		t.Fatalf("mdrep share %v not below service share %v",
			res.MDRepShare, res.ServiceShare)
	}
	// Depth amplifies: 2-step leaks more trust into the clique than
	// 1-step.
	if res.MDRepTwoStepShare <= res.MDRepShare {
		t.Fatalf("2-step share %v not above 1-step %v",
			res.MDRepTwoStepShare, res.MDRepShare)
	}
	if !strings.Contains(res.Render(), "amplification") {
		t.Fatal("render missing table")
	}
}

func TestE3ConfigValidation(t *testing.T) {
	cfg := DefaultE3Config(ScaleSmall)
	cfg.HonestPeers = 5
	if _, err := E3Collusion(cfg); err == nil {
		t.Fatal("tiny population accepted")
	}
}

func TestE4DimensionsOnlyHelp(t *testing.T) {
	res, err := E4Ablation(ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Regimes {
		if res.PlusDM[i] < res.FileOnly[i] {
			t.Fatalf("regime %v: +DM (%v) below file-only (%v)",
				res.Regimes[i], res.PlusDM[i], res.FileOnly[i])
		}
		if res.PlusUM[i] < res.FileOnly[i] {
			t.Fatalf("regime %v: +UM (%v) below file-only (%v)",
				res.Regimes[i], res.PlusUM[i], res.FileOnly[i])
		}
		if res.All[i] < res.PlusDM[i] || res.All[i] < res.PlusUM[i] {
			t.Fatalf("regime %v: all dimensions (%v) below a subset", res.Regimes[i], res.All[i])
		}
	}
	// In the sparse regime the extra dimensions matter a lot.
	if res.PlusDM[0] < res.FileOnly[0]+0.1 {
		t.Fatalf("sparse regime: +DM (%v) adds too little over file-only (%v)",
			res.PlusDM[0], res.FileOnly[0])
	}
	if res.TitForTat <= 0 || res.TitForTat >= res.All[2] {
		t.Fatalf("tit-for-tat baseline %v not between 0 and full coverage %v",
			res.TitForTat, res.PlusUM[2])
	}
	if !strings.Contains(res.Render(), "file-only") {
		t.Fatal("render missing table")
	}
}

func TestE5CoverageGrowsWithDepthButSaturates(t *testing.T) {
	res, err := E5Steps(DefaultE5Config(ScaleSmall))
	if err != nil {
		t.Fatal(err)
	}
	cov := res.Coverage
	if len(cov) != 6 {
		t.Fatalf("coverage depth %d", len(cov))
	}
	for k := 1; k < len(cov); k++ {
		if cov[k] < cov[k-1] {
			t.Fatalf("coverage not monotone in depth: %v", cov)
		}
	}
	// The one-step sparse matrix problem: low one-step coverage.
	if cov[0] > 0.3 {
		t.Fatalf("one-step coverage %v not sparse; regime broken", cov[0])
	}
	// Depth helps substantially…
	if cov[2] < 2*cov[0] {
		t.Fatalf("3-step coverage %v does not clearly improve on 1-step %v", cov[2], cov[0])
	}
	// …but saturates well below the implicit-evaluation fix (Fig. 1's
	// >0.8), which is the paper's argument for densifying one step.
	if cov[len(cov)-1] > 0.8 {
		t.Fatalf("deep coverage %v too high; sparse regime broken", cov[len(cov)-1])
	}
	if !strings.Contains(res.Render(), "steps") {
		t.Fatal("render missing table")
	}
}

func TestE5ConfigValidation(t *testing.T) {
	cfg := DefaultE5Config(ScaleSmall)
	cfg.MaxSteps = 0
	if _, err := E5Steps(cfg); err == nil {
		t.Fatal("zero steps accepted")
	}
}

func TestE6LookupCostLogarithmicAndPiggybackCheaper(t *testing.T) {
	res, err := E6DHT(DefaultE6Config(ScaleSmall))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		// O(log n): far fewer hops than n/2 (the linear-walk cost).
		if row.MeanLookupHops > float64(row.Nodes)/2 {
			t.Fatalf("%d nodes: %v hops/lookup looks linear", row.Nodes, row.MeanLookupHops)
		}
		// Piggybacking roughly halves publication messages.
		if row.MsgsPiggyback >= row.MsgsSeparate*0.7 {
			t.Fatalf("%d nodes: piggyback (%v msgs) not clearly cheaper than separate (%v)",
				row.Nodes, row.MsgsPiggyback, row.MsgsSeparate)
		}
		// Successor-list replication keeps data available under 10% churn.
		if row.RetrievalOKAfterChurn < 0.95 {
			t.Fatalf("%d nodes: only %v retrievable after churn",
				row.Nodes, row.RetrievalOKAfterChurn)
		}
	}
	// Hop count grows sublinearly with ring size.
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if last.MeanLookupHops > first.MeanLookupHops*float64(last.Nodes)/float64(first.Nodes)/2 {
		t.Fatalf("hops grew superlogarithmically: %v@%d vs %v@%d",
			first.MeanLookupHops, first.Nodes, last.MeanLookupHops, last.Nodes)
	}
	if !strings.Contains(res.Render(), "piggyback") {
		t.Fatal("render missing table")
	}
}

func TestE6ConfigValidation(t *testing.T) {
	cfg := DefaultE6Config(ScaleSmall)
	cfg.Files = 0
	if _, err := E6DHT(cfg); err == nil {
		t.Fatal("zero files accepted")
	}
	cfg = DefaultE6Config(ScaleSmall)
	cfg.RingSizes = []int{2}
	if _, err := E6DHT(cfg); err == nil {
		t.Fatal("tiny ring accepted")
	}
}

func TestExperimentsDeterministic(t *testing.T) {
	a, err := E5Steps(DefaultE5Config(ScaleSmall))
	if err != nil {
		t.Fatal(err)
	}
	b, err := E5Steps(DefaultE5Config(ScaleSmall))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Coverage {
		if a.Coverage[i] != b.Coverage[i] {
			t.Fatal("E5 not deterministic")
		}
	}
}

func TestE1PolluterSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep runs eight simulations")
	}
	res, err := E1PolluterSweep(ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MDRep) != len(res.Fractions) || len(res.None) != len(res.Fractions) {
		t.Fatalf("ragged sweep: %+v", res)
	}
	for i := range res.Fractions {
		// The defence must beat no-defence at every attacker strength.
		if res.MDRep[i] >= res.None[i] {
			t.Fatalf("p=%v: mdrep (%v) not below none (%v)",
				res.Fractions[i], res.MDRep[i], res.None[i])
		}
	}
	// The defence degrades as the attacker fraction grows; no-defence is
	// already saturated.
	if res.MDRep[len(res.MDRep)-1] <= res.MDRep[0] {
		t.Fatalf("mdrep did not degrade with attacker strength: %v", res.MDRep)
	}
	if !strings.Contains(res.Render(), "polluter fraction") {
		t.Fatal("render missing table")
	}
}

func TestE7FileDimensionIdentifies(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation runs four simulations")
	}
	res, err := E7Weights(ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	byLabel := make(map[string]E7Row)
	for _, row := range res.Rows {
		byLabel[row.Label] = row
	}
	fileOnly, ok := byLabel["file-only"]
	if !ok {
		t.Fatal("file-only row missing")
	}
	noFile, ok := byLabel["no-file"]
	if !ok {
		t.Fatal("no-file row missing")
	}
	if fileOnly.FakeRatio >= noFile.FakeRatio {
		t.Fatalf("file dimension not doing the identification: file-only %v vs no-file %v",
			fileOnly.FakeRatio, noFile.FakeRatio)
	}
	if fileOnly.Separation() <= noFile.Separation() {
		t.Fatalf("file-only separation %v not above no-file %v",
			fileOnly.Separation(), noFile.Separation())
	}
	if !strings.Contains(res.Render(), "ablation") {
		t.Fatal("render missing table")
	}
}
