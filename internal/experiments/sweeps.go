package experiments

import (
	"fmt"
	"strings"

	"mdrep/internal/p2psim"
)

// E1SweepResult is fake-download ratio as a function of the polluter
// fraction, with and without the defence.
type E1SweepResult struct {
	// Fractions are the polluter population shares swept.
	Fractions []float64
	// MDRep and None hold the fake ratios per fraction.
	MDRep, None []float64
}

// E1PolluterSweep sweeps the attacker strength: how much of the
// population must collude in pollution before each scheme degrades.
func E1PolluterSweep(scale Scale) (*E1SweepResult, error) {
	res := &E1SweepResult{Fractions: []float64{0.1, 0.2, 0.3, 0.4}}
	for _, frac := range res.Fractions {
		for _, scheme := range []p2psim.Scheme{p2psim.SchemeMDRep, p2psim.SchemeNone} {
			cfg := p2psimConfig(scale, p2psim.DefaultConfig())
			cfg.Scheme = scheme
			cfg.PolluterFrac = frac
			run, err := p2psim.Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("experiments: E1 sweep p=%v %s: %w", frac, scheme, err)
			}
			switch scheme {
			case p2psim.SchemeMDRep:
				res.MDRep = append(res.MDRep, run.FakeFraction())
			default:
				res.None = append(res.None, run.FakeFraction())
			}
		}
	}
	return res, nil
}

// Render formats the sweep table.
func (r *E1SweepResult) Render() string {
	var sb strings.Builder
	sb.WriteString("E1 sweep — fake-download ratio vs polluter fraction\n")
	sb.WriteString("polluters   mdrep    none\n")
	for i, frac := range r.Fractions {
		fmt.Fprintf(&sb, "%8.0f%%  %6.3f  %6.3f\n", frac*100, r.MDRep[i], r.None[i])
	}
	return sb.String()
}

// E7Row is one weight setting's outcome.
type E7Row struct {
	Label               string
	Alpha, Beta, Gamma  float64
	FakeRatio           float64
	HonestRep, PollyRep float64
}

// E7Result is the α/β/γ ablation on the pollution scenario — the paper's
// stated future work ("choose the weight values in our work").
type E7Result struct {
	Rows []E7Row
}

// E7Weights runs the E1 scenario under several dimension weightings and
// reports pollution suppression plus the honest/polluter reputation
// separation each weighting achieves.
func E7Weights(scale Scale) (*E7Result, error) {
	settings := []struct {
		label              string
		alpha, beta, gamma float64
	}{
		{"file-only", 1, 0, 0},
		{"default", 0.5, 0.3, 0.2},
		{"volume-heavy", 0.2, 0.6, 0.2},
		{"no-file", 0, 0.6, 0.4},
	}
	res := &E7Result{}
	for _, s := range settings {
		cfg := p2psimConfig(scale, p2psim.DefaultConfig())
		cfg.Reputation.Alpha = s.alpha
		cfg.Reputation.Beta = s.beta
		cfg.Reputation.Gamma = s.gamma
		run, err := p2psim.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: E7 %s: %w", s.label, err)
		}
		res.Rows = append(res.Rows, E7Row{
			Label:     s.label,
			Alpha:     s.alpha,
			Beta:      s.beta,
			Gamma:     s.gamma,
			FakeRatio: run.FakeFraction(),
			HonestRep: run.ReputationByClass[p2psim.Honest],
			PollyRep:  run.ReputationByClass[p2psim.Polluter],
		})
	}
	return res, nil
}

// Separation returns honest/polluter reputation ratio for a row (+Inf
// when polluters hold none).
func (r E7Row) Separation() float64 {
	if r.PollyRep <= 0 {
		return float64(^uint(0) >> 1)
	}
	return r.HonestRep / r.PollyRep
}

// Render formats the weight-ablation table.
func (r *E7Result) Render() string {
	var sb strings.Builder
	sb.WriteString("E7 — dimension-weight ablation under pollution\n")
	sb.WriteString("setting        α    β    γ   fake-ratio  honest-rep  polluter-rep\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-12s %4.1f %4.1f %4.1f  %9.3f  %10.5f  %12.5f\n",
			row.Label, row.Alpha, row.Beta, row.Gamma,
			row.FakeRatio, row.HonestRep, row.PollyRep)
	}
	sb.WriteString("the file dimension does the identification work; volume and user\n")
	sb.WriteString("ratings mainly widen coverage and feed the incentive loop.\n")
	return sb.String()
}
