package experiments

import (
	"fmt"
	"strings"

	"mdrep/internal/core"
	"mdrep/internal/eval"
	"mdrep/internal/multitier"
	"mdrep/internal/sim"
	"mdrep/internal/titfortat"
	"mdrep/internal/trace"
)

// E4Result is the trust-dimension ablation: request coverage with the
// file dimension alone, plus download-volume edges, plus user-rating
// edges, in the sparse (5% votes) and implicit (100%) regimes, with
// Tit-for-Tat private history as the baseline.
type E4Result struct {
	// Regimes holds the vote fractions examined.
	Regimes []float64
	// FileOnly is the file-similarity dimension alone; PlusDM adds
	// download-volume edges; PlusUM adds user-rating edges (without DM);
	// All combines the three. The user-rating proxy (≥3 repeat
	// interactions) is a subset of the download-edge proxy (≥1), so All
	// equals PlusDM by construction — kept separate to make the
	// subsumption visible.
	FileOnly, PlusDM, PlusUM, All []float64
	// TitForTat is the private-history coverage on the same trace.
	TitForTat float64
}

// E4Ablation measures coverage per trust dimension on the Figure 1 trace.
func E4Ablation(scale Scale) (*E4Result, error) {
	tc := DefaultFig1Config(scale).Trace
	tr, err := trace.Generate(tc)
	if err != nil {
		return nil, fmt.Errorf("experiments: E4 trace: %w", err)
	}
	res := &E4Result{Regimes: []float64{0.05, 0.2, 1.0}}
	for _, k := range res.Regimes {
		base := core.CoverageConfig{VoteFraction: k, Buckets: 30, Seed: tc.Seed + 1}
		fileOnly, err := core.MeasureCoverage(tr, base)
		if err != nil {
			return nil, err
		}
		withDM := base
		withDM.WithDownloadEdges = true
		plusDM, err := core.MeasureCoverage(tr, withDM)
		if err != nil {
			return nil, err
		}
		withUM := base
		withUM.WithUserEdges = true
		withUM.UserEdgeThreshold = 3
		plusUM, err := core.MeasureCoverage(tr, withUM)
		if err != nil {
			return nil, err
		}
		withAll := withDM
		withAll.WithUserEdges = true
		withAll.UserEdgeThreshold = 3
		all, err := core.MeasureCoverage(tr, withAll)
		if err != nil {
			return nil, err
		}
		res.FileOnly = append(res.FileOnly, fileOnly.OverallFraction())
		res.PlusDM = append(res.PlusDM, plusDM.OverallFraction())
		res.PlusUM = append(res.PlusUM, plusUM.OverallFraction())
		res.All = append(res.All, all.OverallFraction())
	}

	ledger, err := titfortat.NewLedger(tr.Peers)
	if err != nil {
		return nil, err
	}
	covered := 0
	for _, rec := range tr.Records {
		if ledger.Covered(rec.Uploader, rec.Downloader) {
			covered++
		}
		if err := ledger.RecordDownload(rec.Downloader, rec.Uploader, rec.Size); err != nil {
			return nil, err
		}
	}
	if len(tr.Records) > 0 {
		res.TitForTat = float64(covered) / float64(len(tr.Records))
	}
	return res, nil
}

// Render formats E4 as the ablation table.
func (r *E4Result) Render() string {
	var sb strings.Builder
	sb.WriteString("E4 — request coverage by trust dimension\n")
	sb.WriteString("votes    file-only  +download  +user-only  all\n")
	for i, k := range r.Regimes {
		fmt.Fprintf(&sb, "%5.0f%%   %9.3f  %9.3f  %10.3f  %6.3f\n",
			k*100, r.FileOnly[i], r.PlusDM[i], r.PlusUM[i], r.All[i])
	}
	fmt.Fprintf(&sb, "tit-for-tat private history baseline: %.3f\n", r.TitForTat)
	return sb.String()
}

// E5Config parameterises the multi-trust step sweep.
type E5Config struct {
	// Seed drives trace generation and vote sampling.
	Seed uint64
	// Peers and Downloads size the workload replayed into the engine.
	Peers, Downloads int
	// VoteFraction is the sparse-regime explicit-vote probability.
	VoteFraction float64
	// MaxSteps is the deepest tier examined.
	MaxSteps int
	// Pairs is how many held-out (uploader, downloader) request pairs to
	// test coverage on.
	Pairs int
}

// DefaultE5Config returns the sparse-regime sweep of EXPERIMENTS.md.
func DefaultE5Config(scale Scale) E5Config {
	cfg := E5Config{
		Seed:         11,
		Peers:        250,
		Downloads:    15000,
		VoteFraction: 0.05,
		MaxSteps:     6,
		Pairs:        2000,
	}
	if scale == ScaleFull {
		cfg.Peers = 600
		cfg.Downloads = 60000
		cfg.Pairs = 5000
	}
	return cfg
}

// E5Result is coverage as a function of multi-trust depth n, in the
// sparse-vote regime where the one-step matrix has the coverage problem
// the multi-tier scheme was designed for.
type E5Result struct {
	Config E5Config
	// Coverage[k-1] is the fraction of request pairs reachable within k
	// steps of the one-step trust matrix.
	Coverage []float64
}

// E5Steps builds a sparse one-step trust matrix from the first 80% of a
// trace (votes only, 5%), then measures how many of the remaining request
// pairs each multi-trust depth covers.
func E5Steps(cfg E5Config) (*E5Result, error) {
	if cfg.MaxSteps < 1 || cfg.Peers < 10 || cfg.Pairs < 1 {
		return nil, fmt.Errorf("experiments: invalid E5 config %+v", cfg)
	}
	tc := trace.DefaultGenConfig()
	tc.Seed = cfg.Seed
	tc.Peers = cfg.Peers
	tc.Files = cfg.Peers * 5
	tc.Downloads = cfg.Downloads
	tr, err := trace.Generate(tc)
	if err != nil {
		return nil, fmt.Errorf("experiments: E5 trace: %w", err)
	}

	repCfg := core.DefaultConfig()
	// The sparse regime: votes only (no implicit evaluations) and the
	// file dimension alone, i.e. the "one-step sparse matrix problem"
	// the multi-tier scheme was built for.
	repCfg.Blend = eval.Blend{Eta: 0, Rho: 1}
	repCfg.Alpha, repCfg.Beta, repCfg.Gamma = 1, 0, 0
	engine, err := core.NewConcurrentEngine(cfg.Peers, repCfg)
	if err != nil {
		return nil, err
	}
	split := len(tr.Records) * 8 / 10
	voteRNG := sim.NewRNG(cfg.Seed).DeriveStream("votes")
	// The vote decision is per (peer, file), exactly as in the Figure 1
	// replay: a peer votes on VoteFraction of the files it owns, however
	// often it trades them.
	votes := func(p, file int) bool {
		z := cfg.Seed ^ uint64(p)*0x9e3779b97f4a7c15 ^ uint64(file)*0xc2b2ae3d27d4eb4f
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		return float64(z>>11)/(1<<53) < cfg.VoteFraction
	}
	for _, rec := range tr.Records[:split] {
		f := eval.FileID(trace.FileHash(rec.File))
		if err := engine.RecordDownload(rec.Downloader, rec.Uploader, f, rec.Size, rec.Time); err != nil {
			return nil, err
		}
		for _, p := range []int{rec.Downloader, rec.Uploader} {
			if votes(p, rec.File) {
				if err := engine.Vote(p, f, 0.85+0.1*voteRNG.Float64(), rec.Time); err != nil {
					return nil, err
				}
			}
		}
	}
	tm, err := engine.TM(tr.Duration())
	if err != nil {
		return nil, err
	}
	classifier, err := multitier.NewClassifier(tm, cfg.MaxSteps)
	if err != nil {
		return nil, err
	}
	held := tr.Records[split:]
	pairs := make([][2]int, 0, cfg.Pairs)
	for i := 0; i < len(held) && len(pairs) < cfg.Pairs; i++ {
		pairs = append(pairs, [2]int{held[i].Uploader, held[i].Downloader})
	}
	return &E5Result{Config: cfg, Coverage: classifier.Coverage(pairs)}, nil
}

// Render formats E5 as the coverage-vs-depth table.
func (r *E5Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "E5 — multi-trust depth vs request coverage (votes=%.0f%%)\n",
		r.Config.VoteFraction*100)
	sb.WriteString("steps  coverage\n")
	for k, c := range r.Coverage {
		fmt.Fprintf(&sb, "%5d  %8.3f\n", k+1, c)
	}
	sb.WriteString("note: deeper steps also amplify similarity cliques under vote\n")
	sb.WriteString("stuffing (see TestE5StepsAmplifyStuffing); the paper's n=1 choice\n")
	sb.WriteString("is safe exactly because implicit evaluation densifies one step.\n")
	return sb.String()
}
