package experiments

import (
	"fmt"
	"sort"
	"strings"

	"mdrep/internal/core"
	"mdrep/internal/eigentrust"
	"mdrep/internal/eval"
	"mdrep/internal/metrics"
	"mdrep/internal/p2psim"
	"mdrep/internal/security"
	"mdrep/internal/sim"
	"mdrep/internal/sparse"
	"mdrep/internal/trace"
)

func p2psimConfig(scale Scale, base p2psim.Config) p2psim.Config {
	if scale == ScaleSmall {
		base.Peers = 300
		base.Titles = 400
		base.Requests = 15000
	}
	return base
}

// E1Result compares fake-file suppression across judgement schemes, in
// the fresh-attack scenario (fakes injected at the start of the run) and
// the patient-attacker scenario (fakes seeded with the same holding
// pre-history as real copies, which defeats lifetime heuristics).
type E1Result struct {
	// Labels names each run ("mdrep", "lip+patient", …).
	Labels []string
	// Runs holds the simulation result per label.
	Runs []*p2psim.Result
}

// Fraction returns the fake-download fraction of the labelled run, or -1
// if the label is unknown.
func (r *E1Result) Fraction(label string) float64 {
	for i, l := range r.Labels {
		if l == label {
			return r.Runs[i].FakeFraction()
		}
	}
	return -1
}

// E1FakeFiles runs the pollution scenario once per scheme, plus the
// patient-attacker variant for the two schemes it separates.
func E1FakeFiles(scale Scale) (*E1Result, error) {
	res := &E1Result{}
	runOne := func(label string, scheme p2psim.Scheme, patient bool) error {
		cfg := p2psimConfig(scale, p2psim.DefaultConfig())
		cfg.Scheme = scheme
		cfg.PatientPolluters = patient
		run, err := p2psim.Run(cfg)
		if err != nil {
			return fmt.Errorf("experiments: E1 %s: %w", label, err)
		}
		res.Labels = append(res.Labels, label)
		res.Runs = append(res.Runs, run)
		return nil
	}
	for _, scheme := range []p2psim.Scheme{
		p2psim.SchemeMDRep, p2psim.SchemeLIP, p2psim.SchemeNaiveVoting, p2psim.SchemeNone,
	} {
		if err := runOne(scheme.String(), scheme, false); err != nil {
			return nil, err
		}
	}
	if err := runOne("lip+patient", p2psim.SchemeLIP, true); err != nil {
		return nil, err
	}
	if err := runOne("mdrep+patient", p2psim.SchemeMDRep, true); err != nil {
		return nil, err
	}
	return res, nil
}

// Render formats E1 as a chart of fake-download ratio over time plus the
// aggregate table.
func (r *E1Result) Render() string {
	var sb strings.Builder
	series := make([]*metrics.Series, 0, 4)
	for i, run := range r.Runs {
		if !strings.Contains(r.Labels[i], "patient") {
			series = append(series, run.FakeRatio)
		}
	}
	sb.WriteString(metrics.AsciiChart(
		"E1 — fake-download ratio over time by scheme (fresh attack)", 72, 14, series...))
	sb.WriteString("\nscheme          fake-ratio  avoided  downloads\n")
	for i, run := range r.Runs {
		fmt.Fprintf(&sb, "%-14s  %8.3f  %7d  %9d\n",
			r.Labels[i], run.FakeFraction(), run.AvoidedFakes, run.TotalDownloads)
	}
	sb.WriteString("\n'+patient' rows: fakes seeded with full pre-history — the attack\n")
	sb.WriteString("that defeats lifetime heuristics (LIP) but not behavioural trust.\n")
	return sb.String()
}

// E2Result reports service differentiation by behaviour class.
type E2Result struct {
	Run *p2psim.Result
	// Classes lists the populated behaviour classes in render order.
	Classes []p2psim.Behavior
}

// E2Incentive runs the free-riding scenario under the incentive policy.
func E2Incentive(scale Scale) (*E2Result, error) {
	cfg := p2psimConfig(scale, p2psim.IncentiveConfig())
	run, err := p2psim.Run(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: E2: %w", err)
	}
	res := &E2Result{Run: run}
	for _, b := range []p2psim.Behavior{p2psim.Honest, p2psim.FreeRider, p2psim.Polluter, p2psim.Liar} {
		if run.WaitByClass[b].Count() > 0 {
			res.Classes = append(res.Classes, b)
		}
	}
	return res, nil
}

// Render formats E2 as the per-class service table.
func (r *E2Result) Render() string {
	var sb strings.Builder
	sb.WriteString("E2 — service differentiation (steady state)\n")
	sb.WriteString("class        wait-mean  wait-p90   bandwidth  reputation\n")
	for _, b := range r.Classes {
		w := r.Run.WaitByClass[b]
		bw := r.Run.BandwidthByClass[b]
		fmt.Fprintf(&sb, "%-11s  %7.0fs  %7.0fs  %8.0fB/s  %.6f\n",
			b, w.Mean(), w.Quantile(0.9), bw.Mean(), r.Run.ReputationByClass[b])
	}
	return sb.String()
}

// E3Config parameterises the collusion experiment.
type E3Config struct {
	// Seed drives trace generation and clique randomness.
	Seed uint64
	// HonestPeers is the size of the legitimate population.
	HonestPeers int
	// CliqueSize is the number of colluders appended after the honest
	// population.
	CliqueSize int
	// Downloads is the legitimate workload replayed into the engines.
	Downloads int
	// ServiceFraction is the share of legitimate downloads served by
	// clique members — the "mixed strategy" that lets collusion leak
	// into global trust.
	ServiceFraction float64
	// Clique tunes the forged evidence; Members is filled in by the
	// runner.
	Clique security.CliqueConfig
}

// DefaultE3Config returns the scenario recorded in EXPERIMENTS.md.
func DefaultE3Config(scale Scale) E3Config {
	cfg := E3Config{
		Seed:            7,
		HonestPeers:     150,
		CliqueSize:      50,
		Downloads:       30000,
		ServiceFraction: 0.05,
		Clique:          security.DefaultCliqueConfig(nil),
	}
	if scale == ScaleFull {
		cfg.HonestPeers = 400
		cfg.CliqueSize = 100
		cfg.Downloads = 100000
	}
	return cfg
}

// E3Result compares how much trust the clique captures under each
// mechanism, normalised by the service it actually rendered.
type E3Result struct {
	Config E3Config
	// ServiceShare is the clique's share of real upload volume.
	ServiceShare float64
	// MDRepShare is the clique's share of an honest observer panel's
	// multi-trust mass (1-step).
	MDRepShare float64
	// MDRepTwoStepShare is the same at n = 2 (amplification check).
	MDRepTwoStepShare float64
	// EigenTrustShare is the clique's share of EigenTrust global trust.
	EigenTrustShare float64
	// TitForTatShare is the clique's share under pairwise private
	// history (the honest panel's direct credits).
	TitForTatShare float64
}

// Amplification returns a mechanism's trust share divided by the clique's
// service share; 1.0 means trust proportional to actual service, larger
// means the collusion bought unearned trust.
func amplification(share, service float64) float64 {
	if service == 0 {
		return 0
	}
	return share / service
}

// E3Collusion replays a legitimate workload, injects a collusion clique,
// and measures the clique's captured trust under MDRep, EigenTrust, and
// Tit-for-Tat.
func E3Collusion(cfg E3Config) (*E3Result, error) {
	n := cfg.HonestPeers + cfg.CliqueSize
	if cfg.HonestPeers < 10 || cfg.CliqueSize < 2 {
		return nil, fmt.Errorf("experiments: E3 population too small (%d honest, %d clique)",
			cfg.HonestPeers, cfg.CliqueSize)
	}
	rng := sim.NewRNG(cfg.Seed)

	// Legitimate workload over the honest population.
	tc := trace.DefaultGenConfig()
	tc.Seed = cfg.Seed
	tc.Peers = cfg.HonestPeers
	tc.Files = cfg.HonestPeers * 5
	tc.Downloads = cfg.Downloads
	tr, err := trace.Generate(tc)
	if err != nil {
		return nil, fmt.Errorf("experiments: E3 trace: %w", err)
	}

	repCfg := core.DefaultConfig()
	engine, err := core.NewConcurrentEngine(n, repCfg)
	if err != nil {
		return nil, err
	}
	sat := sparse.New(n)
	var cliqueVolume, totalVolume float64
	cliqueStart := cfg.HonestPeers
	redirect := rng.DeriveStream("redirect")
	evalNoise := rng.DeriveStream("evals")
	for _, rec := range tr.Records {
		uploader := rec.Uploader
		// A fraction of legitimate service is rendered by clique members
		// (they really do upload some real files — the cover traffic that
		// makes collusion dangerous).
		if redirect.Float64() < cfg.ServiceFraction {
			uploader = cliqueStart + redirect.Intn(cfg.CliqueSize)
		}
		if uploader == rec.Downloader {
			continue
		}
		f := eval.FileID(trace.FileHash(rec.File))
		if err := engine.RecordDownload(rec.Downloader, uploader, f, rec.Size, rec.Time); err != nil {
			return nil, err
		}
		// Downloaders keep real files: high implicit evaluation.
		v := 0.85 + 0.1*evalNoise.Float64()
		if err := engine.SetImplicit(rec.Downloader, f, v, rec.Time); err != nil {
			return nil, err
		}
		sat.Add(rec.Downloader, uploader, 1)
		totalVolume += float64(rec.Size)
		if uploader >= cliqueStart {
			cliqueVolume += float64(rec.Size)
		}
	}

	// Inject the clique's forged evidence.
	clique := make([]int, cfg.CliqueSize)
	for i := range clique {
		clique[i] = cliqueStart + i
	}
	cliqueCfg := cfg.Clique
	cliqueCfg.Members = clique
	if err := engine.Locked(func(e *core.Engine) error {
		_, err := security.InjectClique(e, cliqueCfg, rng.DeriveStream("clique"), tr.Duration())
		return err
	}); err != nil {
		return nil, err
	}
	// Colluders also stuff the EigenTrust satisfaction ledger.
	for _, i := range clique {
		for _, j := range clique {
			if i != j {
				sat.Add(i, j, float64(cliqueCfg.FakeDownloads))
			}
		}
	}

	res := &E3Result{Config: cfg, ServiceShare: cliqueVolume / totalVolume}

	// MDRep: honest observer panel, 1-step and 2-step.
	now := tr.Duration()
	tm, err := engine.TM(now)
	if err != nil {
		return nil, err
	}
	panel := []int{0, 1, 2, 3, 4}
	shareAt := func(steps int) (float64, error) {
		var cliqueMass, total float64
		for _, obs := range panel {
			row, err := tm.RowVecPow(obs, steps)
			if err != nil {
				return 0, err
			}
			// Accumulate in ascending peer order: float sums over map
			// iteration would differ run to run.
			peers := make([]int, 0, len(row))
			for p := range row {
				peers = append(peers, p)
			}
			sort.Ints(peers)
			for _, p := range peers {
				total += row[p]
				if p >= cliqueStart {
					cliqueMass += row[p]
				}
			}
		}
		if total == 0 {
			return 0, nil
		}
		return cliqueMass / total, nil
	}
	if res.MDRepShare, err = shareAt(1); err != nil {
		return nil, err
	}
	if res.MDRepTwoStepShare, err = shareAt(2); err != nil {
		return nil, err
	}

	// EigenTrust over the satisfaction ledger.
	local, err := eigentrust.LocalTrustFromSatisfaction(sat, sparse.New(n))
	if err != nil {
		return nil, err
	}
	et, err := eigentrust.Compute(local, eigentrust.DefaultConfig(panel))
	if err != nil {
		return nil, err
	}
	var cliqueTrust float64
	for _, p := range clique {
		cliqueTrust += et.Trust[p]
	}
	res.EigenTrustShare = cliqueTrust

	// Tit-for-Tat: the panel's private credit toward the clique.
	var tftClique, tftTotal float64
	for _, obs := range panel {
		sat.ForEachRow(obs, func(j int, v float64) {
			tftTotal += v
			if j >= cliqueStart {
				tftClique += v
			}
		})
	}
	if tftTotal > 0 {
		res.TitForTatShare = tftClique / tftTotal
	}
	return res, nil
}

// Render formats E3 as the amplification table.
func (r *E3Result) Render() string {
	var sb strings.Builder
	sb.WriteString("E3 — collusion: clique trust share vs service share\n")
	fmt.Fprintf(&sb, "clique service share (ground truth): %.4f\n\n", r.ServiceShare)
	rows := []struct {
		name  string
		share float64
	}{
		{"mdrep n=1", r.MDRepShare},
		{"mdrep n=2", r.MDRepTwoStepShare},
		{"eigentrust", r.EigenTrustShare},
		{"tit-for-tat", r.TitForTatShare},
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].share < rows[j].share })
	sb.WriteString("mechanism     trust-share  amplification\n")
	for _, row := range rows {
		fmt.Fprintf(&sb, "%-12s  %10.4f  %12.2fx\n",
			row.name, row.share, amplification(row.share, r.ServiceShare))
	}
	return sb.String()
}
