// Package mdrep is a multi-dimensional reputation system for P2P file
// sharing, reproducing Yang, Feng, Dai and Zhang, "A Multi-dimensional
// Reputation System Combined with Trust and Incentive Mechanisms in P2P
// File Sharing Systems" (ICDCS 2007).
//
// The package combines a trust mechanism (who can I believe about files?)
// with an incentive mechanism (who deserves good service?) on top of a
// shared evidence base:
//
//   - File-based direct trust: peers whose file evaluations — explicit
//     votes blended with implicit retention-time signals — agree, trust
//     each other (Eq. 1–3).
//   - Download-volume trust: evaluation-weighted bytes actually served
//     (Eq. 4–5).
//   - User-based trust: explicit ratings, friend lists and blacklists
//     (Eq. 6).
//
// The three one-step matrices integrate into TM = α·FM + β·DM + γ·UM
// (Eq. 7); multi-trust reputations are rows of RM = TM^n (Eq. 8); a file's
// reputation is the RM-weighted mean of its evaluators' published
// evaluations (Eq. 9), which identifies fake files before download; and
// service differentiation grants queueing offsets and bandwidth quotas by
// requester reputation (§3.4).
//
// # Quick start
//
//	sys, err := mdrep.NewSystem(100)
//	if err != nil { ... }
//	sys.RecordDownload(alice, bob, "deadbeef", 64<<20, now) // alice fetched from bob
//	sys.Vote(alice, "deadbeef", 0.9, now)                   // and liked it
//	reps, err := sys.Reputations(alice, now)                // alice's trust view
//	j, err := sys.JudgeFile(alice, owners, now)             // fake-file check
//
// Substrates live under internal/: a deterministic simulation kernel, a
// Maze-like trace generator, a Chord DHT with TCP and in-memory
// transports, EigenTrust / Tit-for-Tat / multi-tier baselines, and the
// experiment harness that regenerates the paper's Figure 1 and the
// extension experiments E1–E7 (see DESIGN.md and EXPERIMENTS.md).
package mdrep
