package mdrep

import (
	"testing"

	"mdrep/internal/identity"
)

func TestDecentralizedFacadeEndToEnd(t *testing.T) {
	dir := NewPKIDirectory()
	exchange := NewEvaluationExchange()

	mk := func(seed uint64) *Participant {
		t.Helper()
		id, err := NewIdentity(identity.NewDeterministicReader(seed))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dir.Register(id.PublicKey()); err != nil {
			t.Fatal(err)
		}
		p, err := NewParticipant(id, dir, exchange)
		if err != nil {
			t.Fatal(err)
		}
		exchange.Register(p)
		return p
	}
	alice := mk(1)
	bob := mk(2)

	// Shared taste builds a trust edge.
	alice.Vote("classic", 0.9)
	bob.Vote("classic", 0.92)
	if _, err := alice.SyncPeer(bob.ID()); err != nil {
		t.Fatal(err)
	}
	if alice.TrustRow()[bob.ID()] <= 0 {
		t.Fatal("no trust edge from shared taste")
	}

	// Bob's signed verdict on a new file drives alice's judgement.
	bob.Vote("new-file", 0.05)
	infos, err := bob.SignedEvaluations()
	if err != nil {
		t.Fatal(err)
	}
	var records []EvaluationInfo
	for _, in := range infos {
		if in.FileID == "new-file" {
			records = append(records, in)
		}
	}
	j, err := alice.JudgeFile(records)
	if err != nil {
		t.Fatal(err)
	}
	if !j.Known || !j.Fake {
		t.Fatalf("judgement: %+v", j)
	}
}

func TestNewParticipantWithConfigValidates(t *testing.T) {
	dir := NewPKIDirectory()
	id, err := NewIdentity(identity.NewDeterministicReader(9))
	if err != nil {
		t.Fatal(err)
	}
	cfg := ParticipantConfig{} // zero config is invalid
	if _, err := NewParticipantWithConfig(id, dir, NewEvaluationExchange(), cfg); err == nil {
		t.Fatal("zero config accepted")
	}
}
