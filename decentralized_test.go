package mdrep

import (
	"errors"
	"testing"

	"mdrep/internal/fault"
	"mdrep/internal/identity"
)

func TestDecentralizedFacadeEndToEnd(t *testing.T) {
	dir := NewPKIDirectory()
	exchange := NewEvaluationExchange()

	mk := func(seed uint64) *Participant {
		t.Helper()
		id, err := NewIdentity(identity.NewDeterministicReader(seed))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dir.Register(id.PublicKey()); err != nil {
			t.Fatal(err)
		}
		p, err := NewParticipant(id, dir, exchange)
		if err != nil {
			t.Fatal(err)
		}
		exchange.Register(p)
		return p
	}
	alice := mk(1)
	bob := mk(2)

	// Shared taste builds a trust edge.
	alice.Vote("classic", 0.9)
	bob.Vote("classic", 0.92)
	if _, err := alice.SyncPeer(bob.ID()); err != nil {
		t.Fatal(err)
	}
	if alice.TrustRow()[bob.ID()] <= 0 {
		t.Fatal("no trust edge from shared taste")
	}

	// Bob's signed verdict on a new file drives alice's judgement.
	bob.Vote("new-file", 0.05)
	infos, err := bob.SignedEvaluations()
	if err != nil {
		t.Fatal(err)
	}
	var records []EvaluationInfo
	for _, in := range infos {
		if in.FileID == "new-file" {
			records = append(records, in)
		}
	}
	j, err := alice.JudgeFile(records)
	if err != nil {
		t.Fatal(err)
	}
	if !j.Known || !j.Fake {
		t.Fatalf("judgement: %+v", j)
	}
}

func TestNewParticipantWithConfigValidates(t *testing.T) {
	dir := NewPKIDirectory()
	id, err := NewIdentity(identity.NewDeterministicReader(9))
	if err != nil {
		t.Fatal(err)
	}
	cfg := ParticipantConfig{} // zero config is invalid
	if _, err := NewParticipantWithConfig(id, dir, NewEvaluationExchange(), cfg); err == nil {
		t.Fatal("zero config accepted")
	}
}

// recordSourceFunc adapts a function to RecordSource.
type recordSourceFunc func(f FileID) ([]EvaluationInfo, error)

func (fn recordSourceFunc) FileEvaluations(f FileID) ([]EvaluationInfo, error) { return fn(f) }

func TestResilientJudgeFallsBackToLocalTrustView(t *testing.T) {
	dir := NewPKIDirectory()
	exchange := NewEvaluationExchange()
	mk := func(seed uint64) *Participant {
		t.Helper()
		id, err := NewIdentity(identity.NewDeterministicReader(seed))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dir.Register(id.PublicKey()); err != nil {
			t.Fatal(err)
		}
		p, err := NewParticipant(id, dir, exchange)
		if err != nil {
			t.Fatal(err)
		}
		exchange.Register(p)
		return p
	}
	alice, bob := mk(11), mk(12)

	// Shared taste builds trust, then bob rates the file under judgement
	// and alice caches his list — the local trust view.
	alice.Vote("classic", 0.9)
	bob.Vote("classic", 0.92)
	bob.Vote("target", 0.95)
	if _, err := alice.SyncPeer(bob.ID()); err != nil {
		t.Fatal(err)
	}

	working := recordSourceFunc(func(f FileID) ([]EvaluationInfo, error) {
		infos, err := bob.SignedEvaluations()
		if err != nil {
			return nil, err
		}
		var out []EvaluationInfo
		for _, in := range infos {
			if in.FileID == f {
				out = append(out, in)
			}
		}
		return out, nil
	})
	unreachable := recordSourceFunc(func(FileID) ([]EvaluationInfo, error) {
		return nil, fault.Unreachable(errors.New("dht: all replicas down"))
	})
	terminal := recordSourceFunc(func(FileID) ([]EvaluationInfo, error) {
		return nil, errors.New("record signature rejected")
	})

	judge := &ResilientJudge{Participant: alice, Source: working}
	healthy, err := judge.Judge("target")
	if err != nil {
		t.Fatal(err)
	}
	if !healthy.Known {
		t.Fatalf("healthy path verdict unknown: %+v", healthy)
	}
	if got := judge.Metrics().Fallbacks.Load(); got != 0 {
		t.Fatalf("healthy path bumped fallback counter to %d", got)
	}
	if got := judge.Metrics().Judged.Load(); got != 1 {
		t.Fatalf("judged = %d after one healthy verdict, want 1", got)
	}

	// DHT unreachable: the verdict must come from the cached lists and
	// the degradation must be observable on the counter.
	judge.Source = unreachable
	degraded, err := judge.Judge("target")
	if err != nil {
		t.Fatal(err)
	}
	if !degraded.Known {
		t.Fatalf("fallback verdict unknown despite cached evaluation: %+v", degraded)
	}
	if got := judge.Metrics().Fallbacks.Load(); got != 1 {
		t.Fatalf("fallbacks = %d after one degraded judgement, want 1", got)
	}

	// Terminal failures are not a reason to degrade.
	judge.Source = terminal
	if _, err := judge.Judge("target"); err == nil {
		t.Fatal("terminal source error swallowed by fallback")
	}
	if got := judge.Metrics().Fallbacks.Load(); got != 1 {
		t.Fatalf("terminal error bumped fallback counter to %d", got)
	}
	if got := judge.Metrics().Errors.Load(); got != 1 {
		t.Fatalf("errors = %d after one terminal failure, want 1", got)
	}
}

func TestResilientJudgeInstrument(t *testing.T) {
	dir := NewPKIDirectory()
	id, err := NewIdentity(identity.NewDeterministicReader(21))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dir.Register(id.PublicKey()); err != nil {
		t.Fatal(err)
	}
	p, err := NewParticipant(id, dir, NewEvaluationExchange())
	if err != nil {
		t.Fatal(err)
	}
	unreachable := recordSourceFunc(func(FileID) ([]EvaluationInfo, error) {
		return nil, fault.Unreachable(errors.New("dht down"))
	})
	judge := &ResilientJudge{Participant: p, Source: unreachable}
	reg := NewMetricsRegistry()
	judge.Instrument(reg)
	if _, err := judge.Judge("anything"); err != nil {
		t.Fatal(err)
	}
	// The judge's view and the exported series are the same instrument,
	// so the cache-fallback rate is scrapeable directly.
	if got := reg.Counter("judge_verdicts_total", "outcome", "cache_fallback").Load(); got != 1 {
		t.Fatalf("exported cache_fallback = %d, want 1", got)
	}
	if got := judge.Metrics().Fallbacks.Load(); got != 1 {
		t.Fatalf("judge view fallbacks = %d, want 1", got)
	}
}
