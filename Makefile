# Targets mirror the CI jobs (.github/workflows/ci.yml); keep them in sync.

GO      ?= go
BIN     ?= bin
VETTOOL := $(BIN)/mdrep-lint

.PHONY: all build test race chaos walk obs flight sim shard lint lint-allow lint-fix vet fmt bench bench-json bench-gate clean

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint builds the repo's own go/analysis suite (cmd/mdrep-lint) and runs
# it through the go vet vettool protocol, then standard vet and gofmt.
lint: $(VETTOOL) vet fmt
	$(GO) vet -vettool=$(VETTOOL) ./...

$(VETTOOL): FORCE
	@mkdir -p $(BIN)
	$(GO) build -o $(VETTOOL) ./cmd/mdrep-lint

# lint-allow inventories every //mdrep:allow suppression in the tree
# (outside vendor/ and the analyzer fixtures, which exist to exercise
# the directive). Review the list in perf/correctness PRs: each line is
# a standing exception and must carry a reason after the colon.
lint-allow:
	@list="$$(grep -rn '//mdrep:allow [a-z]*: ' --include='*.go' . \
		| grep -v '^\./vendor/' | grep -v '/testdata/' \
		| grep -vE ':[0-9]+:[[:space:]]*//[[:space:]]' \
		| sed 's|^\./||')"; \
	if [ -n "$$list" ]; then echo "$$list"; fi; \
	echo "lint-allow: $$(printf '%s' "$$list" | grep -c .) suppression(s) outside fixtures"

# lint-fix applies the suite's suggested fixes (currently: faultwrap's
# fault.Terminal wrapping) in place. The vettool protocol has no -fix
# mode, so diagnostics are exported as JSON and replayed through the
# mdrep-lint -applyfix editor. Rerun make lint afterwards; some fixes
# (e.g. adding the fault import) may need a follow-up gofmt/goimports.
lint-fix: $(VETTOOL)
	$(GO) vet -vettool=$(VETTOOL) -json ./... | $(VETTOOL) -applyfix

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -s -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt -s needed on:" >&2; echo "$$out" >&2; exit 1; fi

# chaos runs the fault-schedule resilience suite under the race detector
# twice over (shaking out ordering flakes) and enforces the coverage gate
# on the DHT and chaos packages. The walk package rides along for its
# 50-schedule DHTSource fault suite.
chaos:
	$(GO) test -race -count=2 \
		-coverprofile=chaos.cover -coverpkg=mdrep/internal/dht,mdrep/internal/chaos,mdrep/internal/walk \
		mdrep/internal/chaos mdrep/internal/dht mdrep/internal/walk
	@total="$$($(GO) tool cover -func=chaos.cover | awk '/^total:/ {sub(/%/, "", $$3); print $$3}')"; \
	echo "combined coverage: $$total%"; \
	awk -v t="$$total" 'BEGIN { exit (t >= 80.0) ? 0 : 1 }' || { \
		echo "coverage $$total% is below the 80% gate" >&2; exit 1; }

# obs runs the observability layer under the race detector — the metrics
# registry, the tracer, and every instrumented package's obs tests — then
# the benchmark guard: counter Inc and histogram Observe must stay
# 0 B/op on the hot path (the TestHotPathZeroAlloc test enforces
# allocs == 0; the benchmarks here surface the actual ns/op and B/op).
obs:
	$(GO) test -race -run 'Obs|Observer|Instrument|Metrics|Histogram|Registry|Span|Tracer|Serve|Exchange|Exported' \
		mdrep/internal/metrics mdrep/internal/obs mdrep/internal/sparse \
		mdrep/internal/core mdrep/internal/journal mdrep/internal/dht \
		mdrep/internal/peer mdrep/internal/chaos mdrep/cmd/mdrep-peer
	$(GO) test -run '^$$' -bench 'BenchmarkCounterInc|BenchmarkHistogramObserve' \
		-benchmem mdrep/internal/metrics | tee /dev/stderr | \
		awk '/^Benchmark/ { if ($$(NF-3) != 0) { \
			print "FAIL: " $$1 " allocates " $$(NF-3) " B/op on the hot path" > "/dev/stderr"; exit 1 } }'

# flight runs the causal-tracing and flight-recorder suites under the
# race detector twice over, then enforces the recorder's steady-state
# allocation budget: the ring's Record hot path must stay at 0 B/op or
# an always-on recorder would tax every traced RPC.
flight:
	$(GO) test -race -count=2 mdrep/internal/flight \
		mdrep/internal/obs mdrep/internal/wire
	$(GO) test -race -count=2 -run 'Flight|Trace|Dump|Healthz' \
		mdrep/internal/dht mdrep/internal/chaos mdrep/cmd/mdrep-peer
	$(GO) test -run '^$$' -bench 'BenchmarkRingRecord' \
		-benchmem mdrep/internal/flight | tee /dev/stderr | \
		awk '/^Benchmark/ { if ($$(NF-3) != 0) { \
			print "FAIL: " $$1 " allocates " $$(NF-3) " B/op on the recorder hot path" > "/dev/stderr"; exit 1 } }'

# sim runs the massim adversarial scenario suite under the race
# detector twice over, then asserts the determinism contract the hard
# way: two CLI runs of every scenario at n=10k must be byte-identical.
sim:
	$(GO) test -race -count=2 mdrep/internal/massim
	$(GO) build -o $(BIN)/mdrep-sim ./cmd/mdrep-sim
	$(BIN)/mdrep-sim -exp massim -scenario all -n 10000 -seed 7 > $(BIN)/massim.a.txt
	$(BIN)/mdrep-sim -exp massim -scenario all -n 10000 -seed 7 > $(BIN)/massim.b.txt
	cmp $(BIN)/massim.a.txt $(BIN)/massim.b.txt
	@echo "massim: scenario suite passed, reruns byte-identical"

# shard runs the sharded-engine invariance suite under the race
# detector twice over: shard-count invariance (K ∈ {1,2,8} must be
# bit-identical to the unsharded engine), the concurrent hammer at K=8,
# per-shard journal recovery including truncation at every byte offset,
# and the cross-facade parity tests at the mdrep and massim layers.
shard:
	$(GO) test -race -count=2 -run 'Shard|WithShards|MirrorShards' \
		mdrep mdrep/internal/core mdrep/internal/journal \
		mdrep/internal/massim mdrep/cmd/mdrep-peer

# walk runs the Monte-Carlo reputation estimator suite under the race
# detector twice over: the cross-validation property tests against the
# exact RowVecPow kernel (including the E11 mean-error ≤ 0.05 bound at
# 16k walks on n=2000 graphs), the byte-reproducibility contract across
# GOMAXPROCS values, and the 50-schedule DHTSource chaos suite.
walk:
	$(GO) test -race -count=2 mdrep/internal/walk

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# bench-json snapshots the canonical benchmark suite as a dated JSON
# trajectory file (BENCH_<date>.json) via the cmd/mdrep-bench parser.
# Committing the file each perf PR turns performance claims into diffs.
# Each benchmark runs BENCH_COUNT times (shortened via BENCH_TIME so the
# suite stays fast) and the parser keeps the fastest run (min ns/op):
# scheduler interference on shared/single-core hosts only ever slows a
# run down, so min-of-N damps the noise a single long run cannot.
# Five repeats, not three: fsync-bound and sub-microsecond benchmarks
# still flapped past the 15% gate run-to-run at min-of-3 on 1-CPU hosts.
BENCH_LIST := BenchmarkTrustMatrixBuild|BenchmarkReputationQuery|BenchmarkFileJudgement|BenchmarkSparseMatMul|BenchmarkRMPowParallel|BenchmarkBuildTMIncremental|BenchmarkJournalAppend|BenchmarkRecovery|BenchmarkSystemIngest|BenchmarkSystemJudge|BenchmarkDHTLookup|BenchmarkMassimStep|BenchmarkMassimEpoch|BenchmarkShardedApplyBatch|BenchmarkShardedRebuild|BenchmarkWalkEstimate
BENCH_COUNT := 5
BENCH_TIME  := 0.5s

bench-json:
	$(GO) test -run '^$$' -bench '$(BENCH_LIST)' -count=$(BENCH_COUNT) -benchtime=$(BENCH_TIME) \
		-benchmem mdrep mdrep/internal/massim mdrep/internal/walk \
		| $(GO) run ./cmd/mdrep-bench > BENCH_$$(date +%Y-%m-%d).json
	@echo "wrote BENCH_$$(date +%Y-%m-%d).json"

# bench-gate is the perf regression gate: rerun the canonical suite and
# fail if any benchmark's ns/op regressed more than 15% against the most
# recent committed BENCH_*.json snapshot (cmd/mdrep-bench -gate).
bench-gate:
	@base="$$(ls BENCH_*.json 2>/dev/null | sort | tail -1)"; \
	if [ -z "$$base" ]; then echo "bench-gate: no BENCH_*.json baseline committed" >&2; exit 1; fi; \
	echo "bench-gate: baseline $$base"; \
	$(GO) test -run '^$$' -bench '$(BENCH_LIST)' -count=$(BENCH_COUNT) -benchtime=$(BENCH_TIME) \
		-benchmem mdrep mdrep/internal/massim mdrep/internal/walk \
		| $(GO) run ./cmd/mdrep-bench -gate "$$base"

clean:
	rm -rf $(BIN)

FORCE:
