# Targets mirror the CI jobs (.github/workflows/ci.yml); keep them in sync.

GO      ?= go
BIN     ?= bin
VETTOOL := $(BIN)/mdrep-lint

.PHONY: all build test race lint vet fmt bench clean

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint builds the repo's own go/analysis suite (cmd/mdrep-lint) and runs
# it through the go vet vettool protocol, then standard vet and gofmt.
lint: $(VETTOOL) vet fmt
	$(GO) vet -vettool=$(VETTOOL) ./...

$(VETTOOL): FORCE
	@mkdir -p $(BIN)
	$(GO) build -o $(VETTOOL) ./cmd/mdrep-lint

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

clean:
	rm -rf $(BIN)

FORCE:
